//! The elastic request handler and SAPE's two-phase subquery evaluation
//! (Algorithm 3 in the paper).
//!
//! The request handler gives each endpoint its own worker thread: requests
//! to *different* endpoints proceed in parallel, requests to the *same*
//! endpoint are serialized on its worker — the behaviour of one HTTP
//! connection per endpoint that the paper's "thread per endpoint" design
//! assumes.
//!
//! Subquery evaluation then follows the paper:
//! 1. non-delayed subqueries are submitted concurrently to all their
//!    relevant endpoints and their partitioned results joined;
//! 2. delayed subqueries are evaluated one at a time, most selective
//!    first, as bound subqueries: the already-found bindings of a shared
//!    variable are attached in `VALUES` blocks (one request per block per
//!    endpoint), with source refinement for variable-predicate patterns.
//!    Block sizing is *adaptive* by default: the first block runs at the
//!    configured size, and the per-binding response cardinality it reveals
//!    scales the remaining blocks up (never down) toward a target rows-
//!    per-request — selective subqueries ship far fewer requests, while
//!    the worst case stays exactly the fixed-size schedule.

use crate::cost::SubqueryCosts;
use crate::join::{join_components, par_hash_join, Relation};
use crate::subquery::Subquery;
use lusail_endpoint::{
    Clock, EndpointId, EndpointRef, Federation, HealthHook, RequestKind, RequestPolicy,
    ResilientClient, SystemClock, TraceEvent, TraceSink,
};
use lusail_sparql::ast::{Query, ValuesBlock};
use lusail_sparql::SolutionSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// Executes batches of per-endpoint tasks on a bounded pool of scoped
/// worker threads.
pub struct RequestHandler {
    trace: TraceSink,
    threads: usize,
}

impl Default for RequestHandler {
    fn default() -> Self {
        RequestHandler::new()
    }
}

impl RequestHandler {
    /// Creates a request handler with tracing disabled and a single
    /// (inline) worker.
    pub fn new() -> Self {
        RequestHandler::with_threads(TraceSink::disabled(), 1)
    }

    /// Creates a request handler that records one
    /// [`TraceEvent::Dispatch`] per task batch into `trace`, with a
    /// single (inline) worker.
    pub fn traced(trace: TraceSink) -> Self {
        RequestHandler::with_threads(trace, 1)
    }

    /// Creates a request handler with an explicit worker-thread budget.
    /// A budget of `1` processes every endpoint group inline, in
    /// submission order, with no thread overhead.
    pub fn with_threads(trace: TraceSink, threads: usize) -> Self {
        RequestHandler {
            trace,
            threads: threads.max(1),
        }
    }

    /// The worker-thread budget.
    pub fn threads(&self) -> usize {
        self.threads
    }

    /// Runs every `(endpoint, task)` pair, returning `(endpoint, task,
    /// result)` triples. Tasks for one endpoint run serially on that
    /// endpoint's worker, so the per-endpoint request subsequence is
    /// identical at every thread budget; distinct endpoints run in
    /// parallel up to the budget. Results are merged in a deterministic
    /// order — grouped by endpoint in first-submission order — so output
    /// bytes never depend on thread scheduling. The callback receives the
    /// endpoint's id so it can route the request through a
    /// [`ResilientClient`].
    pub fn run<T, R, F>(
        &self,
        fed: &Federation,
        tasks: Vec<(EndpointId, T)>,
        f: F,
    ) -> Vec<(EndpointId, T, R)>
    where
        T: Send,
        R: Send,
        F: Fn(EndpointId, &EndpointRef, &T) -> R + Sync,
    {
        if tasks.is_empty() {
            return Vec::new();
        }
        let n_tasks = tasks.len();
        // Group tasks by endpoint, preserving submission order per endpoint.
        let mut by_ep: Vec<(EndpointId, Vec<T>)> = Vec::new();
        for (ep, t) in tasks {
            match by_ep.iter_mut().find(|(e, _)| *e == ep) {
                Some((_, v)) => v.push(t),
                None => by_ep.push((ep, vec![t])),
            }
        }
        self.trace.emit(|| TraceEvent::Dispatch {
            tasks: n_tasks,
            endpoints: by_ep.len(),
        });
        let run_group = |ep_id: EndpointId, ts: Vec<T>| -> Vec<(EndpointId, T, R)> {
            let ep = fed.endpoint(ep_id);
            ts.into_iter()
                .map(|t| {
                    let r = f(ep_id, ep, &t);
                    (ep_id, t, r)
                })
                .collect()
        };
        let workers = self.threads.min(by_ep.len());
        if workers <= 1 {
            // Sequential path (budget 1, or a single endpoint group):
            // process groups inline in submission order.
            let mut out = Vec::with_capacity(n_tasks);
            for (ep_id, ts) in by_ep {
                out.extend(run_group(ep_id, ts));
            }
            return out;
        }
        // Static round-robin assignment of endpoint groups to workers:
        // worker w owns groups w, w + workers, w + 2·workers, … and runs
        // its groups serially in order. After joining, slots are sorted by
        // group index, reproducing the sequential merge order exactly.
        let mut buckets: Vec<Vec<(usize, EndpointId, Vec<T>)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (group_idx, (ep_id, ts)) in by_ep.into_iter().enumerate() {
            buckets[group_idx % workers].push((group_idx, ep_id, ts));
        }
        let run_group = &run_group;
        type Slot<T, R> = (usize, Vec<(EndpointId, T, R)>);
        let mut slots: Vec<Slot<T, R>> = Vec::new();
        std::thread::scope(|scope| {
            let handles: Vec<_> = buckets
                .into_iter()
                .map(|bucket| {
                    scope.spawn(move || {
                        bucket
                            .into_iter()
                            .map(|(group_idx, ep_id, ts)| (group_idx, run_group(ep_id, ts)))
                            .collect::<Vec<_>>()
                    })
                })
                .collect();
            for h in handles {
                slots.extend(h.join().expect("endpoint worker panicked"));
            }
        });
        slots.sort_by_key(|(group_idx, _)| *group_idx);
        slots.into_iter().flat_map(|(_, group)| group).collect()
    }
}

/// Counters for graceful degradation: when a probe fails after retries,
/// the engine takes the conservative choice instead of aborting, and
/// records it here (surfaced in `QueryMetrics`). Lost *result* data — a
/// failed execution `SELECT` — is tracked separately because only it makes
/// the final answer incomplete.
#[derive(Debug, Default)]
pub struct Degradation {
    /// Failed source-selection ASKs: the endpoint was assumed relevant.
    pub asks_assumed_relevant: AtomicU64,
    /// Failed GJV check queries: the variable was conservatively assumed
    /// global (more GJVs never lose answers).
    pub checks_assumed_conflict: AtomicU64,
    /// Failed COUNT probes: cardinality fell back to the endpoint's total
    /// triple count.
    pub counts_defaulted: AtomicU64,
    data_loss: AtomicBool,
}

impl Degradation {
    /// Marks that result-bearing data was lost (a failed execution SELECT).
    pub fn record_data_loss(&self) {
        self.data_loss.store(true, Ordering::Relaxed);
    }

    /// True if any result-bearing request failed: the answer is incomplete.
    pub fn data_loss(&self) -> bool {
        self.data_loss.load(Ordering::Relaxed)
    }
}

/// The per-query network context: the parallel [`RequestHandler`], the
/// [`ResilientClient`] (whose tripped-endpoint state lives exactly as long
/// as one query), and the [`Degradation`] scoreboard.
pub struct Net {
    /// Budgeted per-endpoint scheduler.
    pub handler: RequestHandler,
    /// Retry/backoff/trip layer all remote calls go through.
    pub client: ResilientClient,
    /// Conservative-fallback counters for this query.
    pub degradation: Degradation,
    /// The trace sink the whole context emits into (disabled by default).
    pub trace: TraceSink,
    /// The worker-thread budget shared by endpoint dispatch and
    /// partitioned hash joins (`1` = fully sequential).
    pub threads: usize,
}

impl Default for Net {
    fn default() -> Self {
        Net::new(RequestPolicy::default())
    }
}

impl Net {
    /// A single-threaded context over the real clock.
    pub fn new(policy: RequestPolicy) -> Self {
        Net::build(
            policy,
            Arc::new(SystemClock::default()),
            TraceSink::disabled(),
            1,
            None,
        )
    }

    /// A single-threaded context over an injected clock (tests).
    pub fn with_clock(policy: RequestPolicy, clock: Arc<dyn Clock>) -> Self {
        Net::build(policy, clock, TraceSink::disabled(), 1, None)
    }

    /// A context over an injected clock, trace sink, worker budget, and
    /// optional health-transition observer: the handler and client share
    /// the sink, so one enabled sink sees the whole query.
    pub fn build(
        policy: RequestPolicy,
        clock: Arc<dyn Clock>,
        trace: TraceSink,
        threads: usize,
        hook: Option<HealthHook>,
    ) -> Self {
        let threads = threads.max(1);
        let mut client = ResilientClient::traced(policy, clock, trace.clone());
        if let Some(hook) = hook {
            client = client.with_transition_hook(hook);
        }
        Net {
            handler: RequestHandler::with_threads(trace.clone(), threads),
            client,
            degradation: Degradation::default(),
            trace,
            threads,
        }
    }

    /// A `SELECT` carrying result data, with replica-aware failover: a
    /// request that exhausts its retries on one replica-group member is
    /// transparently re-issued against the next healthy member. Only when
    /// every member has failed does it degrade to an empty partition and
    /// mark the query incomplete.
    pub fn select_or_lose(
        &self,
        fed: &Federation,
        ep_id: EndpointId,
        q: &Query,
        vars: Vec<String>,
    ) -> SolutionSet {
        match self.client.select_failover(fed, ep_id, q) {
            Ok((_, sols)) => sols,
            Err(_) => {
                self.degradation.record_data_loss();
                SolutionSet::empty(vars)
            }
        }
    }
}

/// Execution tuning knobs used by [`evaluate_subqueries`].
#[derive(Debug, Clone, Copy)]
pub struct ExecConfig {
    /// Number of bindings per `VALUES` block in bound subqueries (and the
    /// probe-block size when adaptive sizing is on).
    pub block_size: usize,
    /// Row-count threshold above which hash-join probing is parallelized.
    pub parallel_join_threshold: usize,
    /// Scale the `VALUES` block size from the first block's observed
    /// response cardinality. The adapted size never drops below
    /// `block_size`, so the request count never exceeds fixed sizing.
    pub adaptive_values: bool,
    /// Response rows per request the adaptive sizer aims for.
    pub values_target_rows: usize,
    /// Upper bound on an adapted block size.
    pub max_block_size: usize,
    /// Worker-thread budget for partitioned hash joins (`1` = sequential).
    pub threads: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            block_size: 100,
            parallel_join_threshold: 50_000,
            adaptive_values: true,
            values_target_rows: 1024,
            max_block_size: 4096,
            threads: 1,
        }
    }
}

impl ExecConfig {
    /// Maps the engine configuration plus a per-query thread budget onto
    /// the executor's knobs. The single-query and batch paths both build
    /// their config here — if they disagreed, batched answers could
    /// diverge from solo execution.
    pub(crate) fn for_engine(config: &crate::engine::LusailConfig, threads: usize) -> ExecConfig {
        ExecConfig {
            block_size: config.block_size,
            parallel_join_threshold: config.parallel_join_threshold,
            adaptive_values: config.adaptive_values,
            threads,
            ..ExecConfig::default()
        }
    }
}

/// Block size for the post-probe `VALUES` blocks: scales the configured
/// size toward `values_target_rows` response rows per request using the
/// probe block's bindings-in → rows-out ratio. Integer-only and clamped to
/// `[block_size, max_block_size]`, so the schedule stays deterministic and
/// never issues more requests than fixed sizing would.
fn adapted_block_size(config: &ExecConfig, probe_bindings: usize, observed_rows: usize) -> usize {
    // Rows produced per hundred bindings; an empty response floors at one
    // row so highly selective subqueries adapt to the largest blocks.
    let rows_per_hundred = (observed_rows.max(1) * 100) / probe_bindings.max(1);
    let ideal = (config.values_target_rows * 100) / rows_per_hundred.max(1);
    ideal.clamp(
        config.block_size.max(1),
        config.max_block_size.max(config.block_size.max(1)),
    )
}

/// Counters reported back to the engine's metrics.
#[derive(Debug, Clone, Copy, Default)]
pub struct ExecReport {
    /// How many subqueries were delayed by the cost model.
    pub delayed: usize,
}

/// SAPE subquery evaluation (Algorithm 3): evaluates all subqueries and
/// joins their results. `costs` supplies the delay decisions and estimated
/// cardinalities. Returns the joined solution set (one relation; genuinely
/// disconnected components are cross-joined at the end) plus a report.
pub fn evaluate_subqueries(
    fed: &Federation,
    net: &Net,
    subqueries: &[Subquery],
    costs: &SubqueryCosts,
    config: &ExecConfig,
) -> (SolutionSet, ExecReport) {
    assert_eq!(subqueries.len(), costs.delayed.len());
    let mut delayed_idx: Vec<usize> = (0..subqueries.len())
        .filter(|&i| costs.delayed[i])
        .collect();
    let mut non_delayed: Vec<usize> = (0..subqueries.len())
        .filter(|&i| !costs.delayed[i])
        .collect();

    // Never start with an empty concurrent phase: promote the most
    // selective delayed subquery.
    if non_delayed.is_empty() && !delayed_idx.is_empty() {
        let best = *delayed_idx
            .iter()
            .min_by_key(|&&i| costs.cardinality[i])
            .unwrap();
        delayed_idx.retain(|&i| i != best);
        non_delayed.push(best);
        net.trace
            .emit(|| TraceEvent::SubqueryPromoted { index: best });
    }
    let report = ExecReport {
        delayed: delayed_idx.len(),
    };

    // Phase 1: concurrent evaluation of non-delayed subqueries.
    let tasks: Vec<(EndpointId, usize)> = non_delayed
        .iter()
        .flat_map(|&i| subqueries[i].sources.iter().map(move |&ep| (ep, i)))
        .collect();
    let results = net.handler.run(fed, tasks, |ep_id, _, &i| {
        net.select_or_lose(
            fed,
            ep_id,
            &subqueries[i].to_query(None),
            subqueries[i].projection.clone(),
        )
    });

    // Regroup per subquery, consuming the results (no clones).
    let mut by_subquery: lusail_rdf::FxHashMap<usize, Vec<SolutionSet>> =
        lusail_rdf::FxHashMap::default();
    for (_, i, sols) in results {
        by_subquery.entry(i).or_default().push(sols);
    }
    let mut relations: Vec<Relation> = Vec::new();
    for &i in &non_delayed {
        let parts = by_subquery.remove(&i).unwrap_or_default();
        let rel = concat_partitions(&subqueries[i], parts);
        net.trace.emit(|| TraceEvent::SubqueryEvaluated {
            index: i,
            rows: rel.sols.len(),
            partitions: rel.partitions,
        });
        relations.push(rel);
    }

    // Join whatever is joinable so the found bindings are already reduced.
    let mut components = join_components(
        relations,
        config.parallel_join_threshold,
        config.threads,
        &net.trace,
    );

    // Phase 2: delayed subqueries, most selective (refined) first.
    while !delayed_idx.is_empty() {
        let pick = pick_most_selective(&delayed_idx, subqueries, costs, &components);
        delayed_idx.retain(|&i| i != pick);
        let sq = &subqueries[pick];

        // Choose the binding variable: a subquery variable bound in some
        // component, preferring the fewest distinct values.
        let binding = best_binding(sq, &components);
        let relation = match binding {
            Some((var, values)) => {
                let mut sources = sq.sources.clone();
                if sq.triples.iter().any(|t| t.p.is_var()) && sources.len() > 1 {
                    // Source refinement: re-check relevance with the found
                    // bindings before shipping every block everywhere.
                    sources = refine_sources(fed, net, sq, &var, &values, &sources);
                }
                let make_block = |chunk: &[lusail_rdf::TermId]| ValuesBlock {
                    vars: vec![var.clone()],
                    rows: chunk.iter().map(|&id| vec![Some(id)]).collect(),
                };
                let dispatch = |blocks: Vec<ValuesBlock>| -> Vec<SolutionSet> {
                    let tasks: Vec<(EndpointId, ValuesBlock)> = sources
                        .iter()
                        .flat_map(|&ep| blocks.iter().cloned().map(move |b| (ep, b)))
                        .collect();
                    for (ep, block) in &tasks {
                        net.trace.emit(|| TraceEvent::ValuesBatch {
                            subquery: pick,
                            endpoint: *ep,
                            bindings: block.rows.len(),
                        });
                    }
                    net.handler
                        .run(fed, tasks, |ep_id, _, block: &ValuesBlock| {
                            net.select_or_lose(
                                fed,
                                ep_id,
                                &sq.to_query(Some(block.clone())),
                                sq.projection.clone(),
                            )
                        })
                        .into_iter()
                        .map(|(_, _, sols)| sols)
                        .collect()
                };
                let base = config.block_size.max(1);
                let mut parts: Vec<SolutionSet> = Vec::new();
                let mut rest: &[lusail_rdf::TermId] = &values;
                let mut size = base;
                if config.adaptive_values && values.len() > base {
                    // Probe: ship the first block at the configured size and
                    // let its response cardinality set the remaining sizes.
                    let (first, tail) = values.split_at(base);
                    let probe_parts = dispatch(vec![make_block(first)]);
                    let observed: usize = probe_parts.iter().map(SolutionSet::len).sum();
                    parts.extend(probe_parts);
                    rest = tail;
                    size = adapted_block_size(config, first.len(), observed);
                }
                let blocks: Vec<ValuesBlock> = rest.chunks(size).map(make_block).collect();
                if !blocks.is_empty() {
                    parts.extend(dispatch(blocks));
                }
                // Blocks partition *distinct* values of one variable, so a
                // row matches exactly one block: concatenation introduces
                // no duplicates beyond what unbound evaluation would have.
                let mut rel = concat_partitions(sq, parts);
                // The cost model's `threads` term is endpoint streams, not
                // endpoint × block request count.
                rel.partitions = sq.sources.len().max(1);
                rel
            }
            None => {
                // No usable bindings: evaluate unbound.
                let tasks: Vec<(EndpointId, ())> = sq.sources.iter().map(|&ep| (ep, ())).collect();
                let results = net.handler.run(fed, tasks, |ep_id, _, _| {
                    net.select_or_lose(fed, ep_id, &sq.to_query(None), sq.projection.clone())
                });
                let parts: Vec<SolutionSet> =
                    results.into_iter().map(|(_, _, sols)| sols).collect();
                concat_partitions(sq, parts)
            }
        };

        net.trace.emit(|| TraceEvent::SubqueryEvaluated {
            index: pick,
            rows: relation.sols.len(),
            partitions: relation.partitions,
        });
        components.push(relation);
        components = join_components(
            components,
            config.parallel_join_threshold,
            config.threads,
            &net.trace,
        );
    }

    // Cross-join any genuinely disconnected components.
    let mut iter = components.into_iter();
    let mut acc = match iter.next() {
        Some(r) => r.sols,
        None => SolutionSet {
            vars: Vec::new(),
            rows: vec![Vec::new()],
        },
    };
    for r in iter {
        let (left_rows, right_rows) = (acc.len(), r.sols.len());
        acc = par_hash_join(
            &acc,
            &r.sols,
            1,
            config.threads,
            config.parallel_join_threshold,
        );
        net.trace.emit(|| TraceEvent::JoinStep {
            left_rows,
            right_rows,
            output_rows: acc.len(),
            // Cross products are unordered by the DP: their cost is the
            // plain sequential work of both sides.
            cost: left_rows as f64 + right_rows as f64,
        });
    }
    (acc, report)
}

/// Concatenates per-endpoint partitions into one relation, remembering the
/// partition count for the join cost model.
fn concat_partitions(sq: &Subquery, parts: Vec<SolutionSet>) -> Relation {
    let mut sols = SolutionSet::empty(sq.projection.clone());
    let partitions = parts.len().max(1);
    for p in parts {
        sols.append(p);
    }
    Relation { sols, partitions }
}

/// The next delayed subquery: smallest cardinality after refinement by the
/// bindings it can join with (§V-B).
fn pick_most_selective(
    delayed: &[usize],
    subqueries: &[Subquery],
    costs: &SubqueryCosts,
    components: &[Relation],
) -> usize {
    *delayed
        .iter()
        .min_by_key(|&&i| {
            let sq = &subqueries[i];
            let mut refined = costs.cardinality[i];
            for comp in components {
                for v in &comp.sols.vars {
                    if sq.mentions(v) {
                        let n = comp.sols.len() as u64;
                        refined = refined.min(n);
                    }
                }
            }
            refined
        })
        .unwrap()
}

/// Picks the best variable to bind a delayed subquery with: among subquery
/// variables present in some joined component, the one with the fewest
/// distinct values.
fn best_binding(
    sq: &Subquery,
    components: &[Relation],
) -> Option<(String, Vec<lusail_rdf::TermId>)> {
    let mut best: Option<(String, Vec<lusail_rdf::TermId>)> = None;
    for comp in components {
        for v in &comp.sols.vars {
            if !sq.mentions(v) {
                continue;
            }
            let values = comp.sols.distinct_values(v);
            if values.is_empty() {
                continue;
            }
            match &best {
                Some((_, cur)) if cur.len() <= values.len() => {}
                _ => best = Some((v.clone(), values)),
            }
        }
    }
    best
}

/// Source refinement for variable-predicate subqueries: one bound `ASK`
/// per candidate endpoint, dropping endpoints with no matching data. The
/// paper found this far cheaper than shipping every block everywhere. A
/// failed ASK keeps its endpoint (assuming relevance never loses answers).
fn refine_sources(
    fed: &Federation,
    net: &Net,
    sq: &Subquery,
    var: &str,
    values: &[lusail_rdf::TermId],
    sources: &[EndpointId],
) -> Vec<EndpointId> {
    let block = ValuesBlock {
        vars: vec![var.to_string()],
        rows: values.iter().map(|&id| vec![Some(id)]).collect(),
    };
    let mut pattern = lusail_sparql::ast::GroupPattern::bgp(sq.triples.clone());
    pattern.filters = sq.filters.clone();
    pattern.values = Some(block);
    let ask = Query::ask(pattern);
    let tasks: Vec<(EndpointId, ())> = sources.iter().map(|&ep| (ep, ())).collect();
    let results = net.handler.run(fed, tasks, |ep_id, ep, _| {
        match net
            .client
            .request_kind(ep_id, RequestKind::Ask, || ep.ask(&ask))
        {
            Ok(relevant) => relevant,
            Err(_) => {
                net.degradation
                    .asks_assumed_relevant
                    .fetch_add(1, Ordering::Relaxed);
                true
            }
        }
    });
    let refined: Vec<EndpointId> = results
        .into_iter()
        .filter(|(_, _, ok)| *ok)
        .map(|(ep, _, _)| ep)
        .collect();
    if refined.is_empty() {
        sources.to_vec()
    } else {
        refined
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_endpoint::LocalEndpoint;
    use lusail_rdf::{Dictionary, Term};
    use lusail_store::TripleStore;
    use std::sync::Arc;

    fn two_endpoint_fed() -> Federation {
        let dict = Dictionary::shared();
        let mut a = TripleStore::new(Arc::clone(&dict));
        a.insert_terms(
            &Term::iri("http://a/s"),
            &Term::iri("http://x/p"),
            &Term::iri("http://a/o"),
        );
        let mut b = TripleStore::new(Arc::clone(&dict));
        b.insert_terms(
            &Term::iri("http://b/s"),
            &Term::iri("http://x/p"),
            &Term::iri("http://b/o"),
        );
        let mut fed = Federation::new(dict);
        fed.add(Arc::new(LocalEndpoint::new("A", a)));
        fed.add(Arc::new(LocalEndpoint::new("B", b)));
        fed
    }

    #[test]
    fn handler_runs_tasks_grouped_by_endpoint() {
        let fed = two_endpoint_fed();
        let handler = RequestHandler::new();
        let tasks = vec![(0usize, 1u32), (1, 2), (0, 3), (1, 4)];
        let mut results = handler.run(&fed, tasks, |_, ep, &t| format!("{}-{}", ep.name(), t));
        results.sort_by_key(|(_, t, _)| *t);
        let strings: Vec<&str> = results.iter().map(|(_, _, s)| s.as_str()).collect();
        assert_eq!(strings, ["A-1", "B-2", "A-3", "B-4"]);
    }

    #[test]
    fn handler_empty_tasks() {
        let fed = two_endpoint_fed();
        let handler = RequestHandler::new();
        let out: Vec<(EndpointId, u32, u32)> = handler.run(&fed, Vec::new(), |_, _, &t| t);
        assert!(out.is_empty());
    }

    #[test]
    fn handler_single_endpoint_runs_inline() {
        let fed = two_endpoint_fed();
        let handler = RequestHandler::new();
        let out = handler.run(&fed, vec![(1usize, 10u32), (1, 20)], |_, _, &t| t * 2);
        assert_eq!(out, vec![(1, 10, 20), (1, 20, 40)]);
    }
}

#[cfg(test)]
mod sape_tests {
    use super::*;
    use crate::cost::SubqueryCosts;
    use crate::subquery::Subquery;
    use lusail_endpoint::LocalEndpoint;
    use lusail_rdf::{Dictionary, Term};
    use lusail_sparql::ast::{PatternTerm, TriplePattern};
    use lusail_store::TripleStore;
    use std::sync::Arc;

    /// Chain data split over two endpoints: A holds p-edges, B holds
    /// q-edges for half the midpoints.
    fn chain_fed() -> (Federation, Arc<Dictionary>) {
        let dict = Dictionary::shared();
        let mut a = TripleStore::new(Arc::clone(&dict));
        let mut b = TripleStore::new(Arc::clone(&dict));
        for i in 0..20 {
            let s = Term::iri(format!("http://a/s{i}"));
            let m = Term::iri(format!("http://m/v{i}"));
            a.insert_terms(&s, &Term::iri("http://x/p"), &m);
            if i % 2 == 0 {
                b.insert_terms(&m, &Term::iri("http://x/q"), &Term::int(i));
            }
        }
        let mut fed = Federation::new(Arc::clone(&dict));
        fed.add(Arc::new(LocalEndpoint::new("A", a)));
        fed.add(Arc::new(LocalEndpoint::new("B", b)));
        (fed, dict)
    }

    fn tp(dict: &Dictionary, s: &str, p: &str, o: &str) -> TriplePattern {
        let term = |t: &str| {
            if let Some(v) = t.strip_prefix('?') {
                PatternTerm::Var(v.to_string())
            } else {
                PatternTerm::Const(dict.encode(&Term::iri(t)))
            }
        };
        TriplePattern::new(term(s), term(p), term(o))
    }

    fn subqueries(dict: &Dictionary) -> Vec<Subquery> {
        vec![
            Subquery::new(vec![tp(dict, "?s", "http://x/p", "?m")], vec![0]),
            Subquery::new(vec![tp(dict, "?m", "http://x/q", "?n")], vec![1]),
        ]
    }

    #[test]
    fn delayed_subquery_is_bound_with_values_blocks() {
        let (fed, dict) = chain_fed();
        let sqs = subqueries(&dict);
        let costs = SubqueryCosts {
            cardinality: vec![20, 10],
            delayed: vec![false, true],
        };
        let net = Net::default();
        let config = ExecConfig {
            block_size: 4,
            parallel_join_threshold: usize::MAX,
            adaptive_values: false,
            ..ExecConfig::default()
        };
        let before = fed.stats_snapshot();
        let (sols, report) = evaluate_subqueries(&fed, &net, &sqs, &costs, &config);
        let window = fed.stats_snapshot().since(&before);
        assert_eq!(report.delayed, 1);
        assert_eq!(sols.len(), 10);
        // Phase 1: one select at A. Phase 2: 20 bindings / 4 per block =
        // 5 selects at B.
        assert_eq!(window.select_requests, 1 + 5);
    }

    #[test]
    fn adaptive_batching_grows_blocks_and_preserves_results() {
        let (fed, dict) = chain_fed();
        let sqs = subqueries(&dict);
        let costs = SubqueryCosts {
            cardinality: vec![20, 10],
            delayed: vec![false, true],
        };
        let net = Net::default();
        let config = ExecConfig {
            block_size: 4,
            parallel_join_threshold: usize::MAX,
            ..ExecConfig::default()
        };
        let before = fed.stats_snapshot();
        let (sols, report) = evaluate_subqueries(&fed, &net, &sqs, &costs, &config);
        let window = fed.stats_snapshot().since(&before);
        assert_eq!(report.delayed, 1);
        assert_eq!(sols.len(), 10);
        // Phase 1: one select at A. Phase 2: the 4-binding probe block
        // returns 2 rows, so the sizer scales way past the 16 remaining
        // bindings (clamped at max_block_size) and ships them in a single
        // block: 2 selects at B instead of fixed sizing's 5.
        assert_eq!(window.select_requests, 1 + 2);
    }

    #[test]
    fn adapted_size_never_shrinks_and_respects_bounds() {
        let config = ExecConfig {
            block_size: 100,
            values_target_rows: 1024,
            max_block_size: 4096,
            ..ExecConfig::default()
        };
        // Empty probe response: maximally selective, jump to the cap.
        assert_eq!(adapted_block_size(&config, 100, 0), 4096);
        // One row per binding: target rows per request.
        assert_eq!(adapted_block_size(&config, 100, 100), 1024);
        // Explosive fan-out (10 rows per binding): clamped at the floor —
        // the schedule never gets *more* requests than fixed sizing.
        assert_eq!(adapted_block_size(&config, 100, 1000), 102);
        assert_eq!(adapted_block_size(&config, 100, 10_000), 100);
        // Degenerate probe sizes never divide by zero.
        assert_eq!(adapted_block_size(&config, 0, 0), 1024);
    }

    #[test]
    fn all_delayed_promotes_the_most_selective() {
        let (fed, dict) = chain_fed();
        let sqs = subqueries(&dict);
        let costs = SubqueryCosts {
            cardinality: vec![20, 10],
            delayed: vec![true, true],
        };
        let net = Net::default();
        let config = ExecConfig::default();
        let (sols, report) = evaluate_subqueries(&fed, &net, &sqs, &costs, &config);
        // One was promoted to the concurrent phase; one stayed delayed.
        assert_eq!(report.delayed, 1);
        assert_eq!(sols.len(), 10);
    }

    #[test]
    fn no_delays_joins_concurrent_results() {
        let (fed, dict) = chain_fed();
        let sqs = subqueries(&dict);
        let costs = SubqueryCosts {
            cardinality: vec![20, 10],
            delayed: vec![false, false],
        };
        let net = Net::default();
        let config = ExecConfig::default();
        let before = fed.stats_snapshot();
        let (sols, report) = evaluate_subqueries(&fed, &net, &sqs, &costs, &config);
        let window = fed.stats_snapshot().since(&before);
        assert_eq!(report.delayed, 0);
        assert_eq!(sols.len(), 10);
        // Both subqueries run unbound: exactly 2 selects.
        assert_eq!(window.select_requests, 2);
    }

    #[test]
    fn empty_subquery_list_yields_single_empty_row() {
        let (fed, _) = chain_fed();
        let net = Net::default();
        let (sols, report) = evaluate_subqueries(
            &fed,
            &net,
            &[],
            &SubqueryCosts::default(),
            &ExecConfig::default(),
        );
        assert_eq!(report.delayed, 0);
        assert_eq!(sols.len(), 1);
        assert!(sols.vars.is_empty());
    }
}
