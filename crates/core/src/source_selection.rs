//! Source selection: which endpoints are relevant to each triple pattern.
//!
//! Like FedX and the paper's §III, Lusail probes every triple pattern with
//! an `ASK` at every endpoint, memoizing the answers. The probes for the
//! patterns of one query are issued in parallel through the elastic
//! request handler (one worker per endpoint).

use crate::cache::{pattern_key, ProbeCache};
use crate::exec::Net;
use lusail_endpoint::{EndpointId, Federation};
use lusail_sparql::ast::{GroupPattern, Query, TriplePattern};
use std::sync::atomic::Ordering;

/// Relevant endpoints for every triple pattern of a query, in
/// `GroupPattern::all_triples` order.
#[derive(Debug, Clone, Default)]
pub struct SourceMap {
    entries: Vec<(TriplePattern, Vec<EndpointId>)>,
}

impl SourceMap {
    /// Adds an entry directly (used by tests and by engines that compute
    /// relevance through other means, e.g. the index-based baselines).
    pub fn push_entry(&mut self, tp: TriplePattern, mut sources: Vec<EndpointId>) {
        sources.sort_unstable();
        sources.dedup();
        self.entries.push((tp, sources));
    }

    /// The sorted endpoint set relevant to `tp`. Patterns not probed (not
    /// part of the analyzed query) return the empty set.
    pub fn sources(&self, tp: &TriplePattern) -> &[EndpointId] {
        self.entries
            .iter()
            .find(|(t, _)| t == tp)
            .map(|(_, s)| s.as_slice())
            .unwrap_or(&[])
    }

    /// Iterates over `(pattern, sources)` entries.
    pub fn iter(&self) -> impl Iterator<Item = &(TriplePattern, Vec<EndpointId>)> {
        self.entries.iter()
    }

    /// True if some *required* pattern has no relevant source (the query
    /// is guaranteed empty).
    pub fn any_required_empty(&self, required: &[TriplePattern]) -> bool {
        required.iter().any(|tp| self.sources(tp).is_empty())
    }

    /// The union of all patterns' sources.
    pub fn all_sources(&self) -> Vec<EndpointId> {
        let mut out: Vec<EndpointId> = Vec::new();
        for (_, s) in &self.entries {
            for id in s {
                if !out.contains(id) {
                    out.push(*id);
                }
            }
        }
        out.sort_unstable();
        out
    }

    /// The intersection of the sources of the given patterns (endpoints
    /// able to answer all of them).
    pub fn common_sources(&self, patterns: &[TriplePattern]) -> Vec<EndpointId> {
        let mut iter = patterns.iter();
        let Some(first) = iter.next() else {
            return Vec::new();
        };
        let mut acc: Vec<EndpointId> = self.sources(first).to_vec();
        for tp in iter {
            let s = self.sources(tp);
            acc.retain(|id| s.contains(id));
        }
        acc
    }
}

/// Runs source selection for every triple pattern of `pattern` (including
/// nested OPTIONAL/UNION/NOT EXISTS groups) against all endpoints. A probe
/// whose endpoint fails (after retries) degrades gracefully: the endpoint
/// is *assumed relevant* — a safe over-approximation that can only cost
/// extra requests, never answers — and the assumption is not cached.
pub fn select_sources(
    fed: &Federation,
    pattern: &GroupPattern,
    cache: &ProbeCache<bool>,
    net: &Net,
) -> SourceMap {
    let triples: Vec<TriplePattern> = pattern.all_triples().into_iter().cloned().collect();
    let mut entries: Vec<(TriplePattern, Vec<EndpointId>)> = Vec::with_capacity(triples.len());

    // Deduplicate patterns: repeated patterns share one probe set.
    let mut unique: Vec<TriplePattern> = Vec::new();
    for tp in &triples {
        if !unique.contains(tp) {
            unique.push(tp.clone());
        }
    }

    // Build the probe task list, skipping cached answers. Only *logical*
    // endpoints (replica-group primaries) are probed: replicas hold the
    // same data, so probing them as independent sources would duplicate
    // every result row. Failover reaches them through the replica group,
    // not through source selection.
    let logical = fed.logical_ids();
    let mut tasks: Vec<(EndpointId, TriplePattern)> = Vec::new();
    let mut known: Vec<(TriplePattern, EndpointId, bool)> = Vec::new();
    for tp in &unique {
        let key = pattern_key(tp);
        for &ep_id in &logical {
            match cache.get(&key, ep_id) {
                Some(answer) => known.push((tp.clone(), ep_id, answer)),
                // Cache miss: offline statistics answer next, when they
                // are attached for the endpoint *and* conclusive for the
                // pattern (a conclusive answer is exact — see
                // `EndpointStats::ask_pattern`). Stats answers are not
                // written into the probe cache: the cache is invalidated
                // per-endpoint on death and stats independently so, and
                // mixing the two would blur that audit trail.
                None => match fed.stats_for(ep_id).and_then(|s| s.ask_pattern(tp)) {
                    Some(answer) => {
                        net.trace
                            .emit(|| lusail_endpoint::TraceEvent::StatsAnswered {
                                endpoint: ep_id,
                                kind: lusail_endpoint::RequestKind::Ask,
                            });
                        known.push((tp.clone(), ep_id, answer));
                    }
                    None => tasks.push((ep_id, tp.clone())),
                },
            }
        }
    }

    // Probe uncached (endpoint, pattern) pairs in parallel by endpoint.
    let probed = net
        .handler
        .run(fed, tasks, |ep_id, ep, tp: &TriplePattern| {
            let q = Query::ask(GroupPattern::bgp(vec![tp.clone()]));
            net.client
                .request_kind(ep_id, lusail_endpoint::RequestKind::Ask, || ep.ask(&q))
        });
    for (ep_id, tp, answer) in probed {
        match answer {
            Ok(answer) => {
                cache.put(pattern_key(&tp), ep_id, answer);
                known.push((tp, ep_id, answer));
            }
            Err(_) => {
                net.degradation
                    .asks_assumed_relevant
                    .fetch_add(1, Ordering::Relaxed);
                known.push((tp, ep_id, true));
            }
        }
    }

    for tp in triples {
        let mut sources: Vec<EndpointId> = known
            .iter()
            .filter(|(t, _, ans)| *ans && *t == tp)
            .map(|(_, ep, _)| *ep)
            .collect();
        sources.sort_unstable();
        sources.dedup();
        entries.push((tp, sources));
    }
    SourceMap { entries }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_endpoint::LocalEndpoint;
    use lusail_rdf::{Dictionary, Term};
    use lusail_sparql::parse_query;
    use lusail_store::TripleStore;
    use std::sync::Arc;

    fn fed() -> Federation {
        let dict = Dictionary::shared();
        let mut a = TripleStore::new(Arc::clone(&dict));
        a.insert_terms(
            &Term::iri("http://x/s1"),
            &Term::iri("http://x/p"),
            &Term::iri("http://x/o1"),
        );
        let mut b = TripleStore::new(Arc::clone(&dict));
        b.insert_terms(
            &Term::iri("http://x/s2"),
            &Term::iri("http://x/q"),
            &Term::iri("http://x/o2"),
        );
        let mut fed = Federation::new(dict);
        fed.add(Arc::new(LocalEndpoint::new("A", a)));
        fed.add(Arc::new(LocalEndpoint::new("B", b)));
        fed
    }

    #[test]
    fn selects_only_answering_endpoints() {
        let f = fed();
        let q = parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?o . ?s <http://x/q> ?o2 . ?s <http://x/r> ?o3 }",
            f.dict(),
        )
        .unwrap();
        let cache = ProbeCache::new(true);
        let net = Net::default();
        let sm = select_sources(&f, &q.pattern, &cache, &net);
        assert_eq!(sm.sources(&q.pattern.triples[0]), &[0]);
        assert_eq!(sm.sources(&q.pattern.triples[1]), &[1]);
        assert!(sm.sources(&q.pattern.triples[2]).is_empty());
        assert!(sm.any_required_empty(&q.pattern.triples));
        assert_eq!(sm.all_sources(), vec![0, 1]);
        assert!(sm.common_sources(&q.pattern.triples[0..2]).is_empty());
    }

    #[test]
    fn replicas_are_not_probed_as_independent_sources() {
        let dict = Dictionary::shared();
        let triple = |st: &mut TripleStore| {
            st.insert_terms(
                &Term::iri("http://x/s1"),
                &Term::iri("http://x/p"),
                &Term::iri("http://x/o1"),
            );
        };
        let mut a = TripleStore::new(Arc::clone(&dict));
        triple(&mut a);
        let mut a2 = TripleStore::new(Arc::clone(&dict));
        triple(&mut a2);
        let mut f = Federation::new(Arc::clone(&dict));
        let primary = f.add(Arc::new(LocalEndpoint::new("A", a)));
        f.add_replica(primary, Arc::new(LocalEndpoint::new("A-replica", a2)));
        let q = parse_query("SELECT * WHERE { ?s <http://x/p> ?o }", f.dict()).unwrap();
        let cache = ProbeCache::new(true);
        let net = Net::default();
        let before = f.stats_snapshot();
        let sm = select_sources(&f, &q.pattern, &cache, &net);
        // Only the primary is probed and only it is a relevant source —
        // otherwise every row would be fetched twice.
        assert_eq!(sm.sources(&q.pattern.triples[0]), &[primary]);
        assert_eq!(f.stats_snapshot().since(&before).ask_requests, 1);
    }

    #[test]
    fn stats_elide_conclusive_asks_without_changing_sources() {
        let f = fed();
        let q = parse_query(
            "SELECT * WHERE { ?s <http://x/p> ?o . ?s <http://x/q> ?o2 }",
            f.dict(),
        )
        .unwrap();
        let net = Net::default();
        let baseline = select_sources(&f, &q.pattern, &ProbeCache::new(false), &net);
        let wire = f.stats_snapshot();
        // Attach stats for endpoint A only: its two probes (p present,
        // q absent) are both conclusive, so only B's two go to the wire.
        for id in 0..f.len() {
            if f.endpoint(id).name() == "A" {
                f.attach_stats(
                    id,
                    Arc::new(lusail_store::EndpointStats::build(&store_of(&f, id))),
                );
            }
        }
        let sm = select_sources(&f, &q.pattern, &ProbeCache::new(false), &net);
        assert_eq!(f.stats_snapshot().since(&wire).ask_requests, 2);
        for (tp, sources) in sm.iter() {
            assert_eq!(sources, baseline.sources(tp));
        }
    }

    /// Rebuilds the store content of endpoint `id` (tests only — local
    /// endpoints do not expose their store through the trait object).
    fn store_of(f: &Federation, id: usize) -> TripleStore {
        let mut st = TripleStore::new(Arc::clone(f.dict()));
        if f.endpoint(id).name() == "A" {
            st.insert_terms(
                &Term::iri("http://x/s1"),
                &Term::iri("http://x/p"),
                &Term::iri("http://x/o1"),
            );
        }
        st
    }

    #[test]
    fn cache_avoids_repeat_asks() {
        let f = fed();
        let q = parse_query("SELECT * WHERE { ?s <http://x/p> ?o }", f.dict()).unwrap();
        let cache = ProbeCache::new(true);
        let net = Net::default();
        let before = f.stats_snapshot();
        select_sources(&f, &q.pattern, &cache, &net);
        let mid = f.stats_snapshot();
        assert_eq!(mid.since(&before).ask_requests, 2);
        // Second run: fully cached, zero asks.
        select_sources(&f, &q.pattern, &cache, &net);
        let after = f.stats_snapshot();
        assert_eq!(after.since(&mid).ask_requests, 0);
    }

    #[test]
    fn disabled_cache_probes_again() {
        let f = fed();
        let q = parse_query("SELECT * WHERE { ?s <http://x/p> ?o }", f.dict()).unwrap();
        let cache = ProbeCache::new(false);
        let net = Net::default();
        let before = f.stats_snapshot();
        select_sources(&f, &q.pattern, &cache, &net);
        select_sources(&f, &q.pattern, &cache, &net);
        let after = f.stats_snapshot();
        assert_eq!(after.since(&before).ask_requests, 4);
    }
}
