//! Subqueries: the unit of work LADE produces and SAPE schedules.

use lusail_endpoint::EndpointId;
use lusail_sparql::ast::{Expression, GroupPattern, Query, TriplePattern, ValuesBlock};

/// Anything filters can be pushed into: Lusail subqueries and the
/// baselines' evaluation units both implement this, sharing one pushdown
/// routine ([`push_filters_into`]).
pub trait FilterTarget {
    /// True if the target's patterns mention the variable.
    fn mentions_var(&self, var: &str) -> bool;
    /// Attaches a filter to the target.
    fn push_filter(&mut self, filter: Expression);
}

/// Pushes each filter into every target containing all its variables;
/// returns the filters that could not be pushed anywhere (the caller
/// applies them globally, per §IV-C's clause-placement rule).
pub fn push_filters_into<T: FilterTarget>(
    filters: &[Expression],
    targets: &mut [T],
) -> Vec<Expression> {
    let mut global = Vec::new();
    for f in filters {
        let vars = f.vars();
        let mut pushed = false;
        for t in targets.iter_mut() {
            if !vars.is_empty() && vars.iter().all(|v| t.mentions_var(v)) {
                t.push_filter(f.clone());
                pushed = true;
            }
        }
        if !pushed {
            global.push(f.clone());
        }
    }
    global
}

/// A subquery: a group of triple patterns that every relevant endpoint can
/// answer locally without missing results, plus any filters pushed into it.
#[derive(Debug, Clone, PartialEq)]
pub struct Subquery {
    /// The triple patterns evaluated together.
    pub triples: Vec<TriplePattern>,
    /// Filters pushed down into this subquery (all their variables are
    /// local to it).
    pub filters: Vec<Expression>,
    /// The endpoints this subquery must be sent to (sorted).
    pub sources: Vec<EndpointId>,
    /// The variables to project back to the federated engine: join
    /// variables, globally-filtered variables, and query output variables.
    pub projection: Vec<String>,
    /// True if this subquery came from an `OPTIONAL` group; its result is
    /// left-joined rather than joined.
    pub optional: bool,
}

impl Subquery {
    /// Creates a subquery over the given patterns and sources; projection
    /// defaults to every variable (callers shrink it afterwards).
    pub fn new(triples: Vec<TriplePattern>, sources: Vec<EndpointId>) -> Self {
        let projection = lusail_sparql::ast::collect_pattern_vars(&triples);
        Subquery {
            triples,
            filters: Vec::new(),
            sources,
            projection,
            optional: false,
        }
    }

    /// All variables appearing in the subquery's patterns.
    pub fn vars(&self) -> Vec<String> {
        lusail_sparql::ast::collect_pattern_vars(&self.triples)
    }

    /// True if the subquery mentions the variable.
    pub fn mentions(&self, var: &str) -> bool {
        self.triples.iter().any(|t| t.mentions(var))
    }

    /// Renders the subquery as an executable `SELECT`, optionally with a
    /// `VALUES` block of bindings (used for delayed/bound evaluation).
    pub fn to_query(&self, values: Option<ValuesBlock>) -> Query {
        let mut pattern = GroupPattern::bgp(self.triples.clone());
        pattern.filters = self.filters.clone();
        pattern.values = values;
        Query {
            form: lusail_sparql::ast::QueryForm::Select,
            distinct: false,
            projection: self.projection.clone(),
            pattern,
            aggregates: Vec::new(),
            group_by: Vec::new(),
            having: Vec::new(),
            order_by: Vec::new(),
            limit: None,
        }
    }
}

impl FilterTarget for Subquery {
    fn mentions_var(&self, var: &str) -> bool {
        self.mentions(var)
    }

    fn push_filter(&mut self, filter: Expression) {
        self.filters.push(filter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_rdf::TermId;
    use lusail_sparql::ast::PatternTerm;

    fn tp(s: &str, p: u32, o: &str) -> TriplePattern {
        TriplePattern::new(
            PatternTerm::Var(s.into()),
            PatternTerm::Const(TermId(p)),
            PatternTerm::Var(o.into()),
        )
    }

    #[test]
    fn new_projects_all_vars() {
        let sq = Subquery::new(vec![tp("a", 1, "b"), tp("b", 2, "c")], vec![0, 1]);
        assert_eq!(sq.projection, ["a", "b", "c"]);
        assert_eq!(sq.vars(), ["a", "b", "c"]);
        assert!(sq.mentions("b"));
        assert!(!sq.mentions("z"));
    }

    #[test]
    fn to_query_carries_projection_and_values() {
        let mut sq = Subquery::new(vec![tp("a", 1, "b")], vec![0]);
        sq.projection = vec!["a".into()];
        let vb = ValuesBlock {
            vars: vec!["a".into()],
            rows: vec![vec![Some(TermId(7))]],
        };
        let q = sq.to_query(Some(vb.clone()));
        assert_eq!(q.projection, ["a"]);
        assert_eq!(q.pattern.values, Some(vb));
        assert_eq!(q.pattern.triples.len(), 1);
    }
}
