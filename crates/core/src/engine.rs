//! The Lusail engine: orchestrates source selection, LADE, and SAPE for a
//! full SPARQL query (conjunctive core plus FILTER / OPTIONAL / UNION /
//! FILTER NOT EXISTS / VALUES / DISTINCT / LIMIT).
//!
//! Clause placement follows §IV-C "Generic SPARQL Queries": filters whose
//! variables live entirely inside one subquery are pushed to the
//! endpoints; everything else is applied during global join evaluation.
//! `OPTIONAL`, `UNION`, and `FILTER NOT EXISTS` groups are evaluated
//! recursively with the same machinery and combined with left / union /
//! anti joins at the global level. A query whose pattern is *disjoint*
//! (no global join variables, identical sources) ships unchanged to every
//! relevant endpoint and the results are concatenated — the paper's
//! fast path for LUBM Q1/Q2.

use crate::cache::{KeyedCache, ProbeCache};
use crate::cost::{
    decide_delays, decide_delays_detailed, estimate_cardinalities, DelayPolicy, SubqueryCosts,
};
use crate::decompose::{decompose, decompose_traced, is_disjoint};
use crate::exec::{evaluate_subqueries, ExecConfig, Net};
use crate::explain::render_pattern;
use crate::gjv::detect_gjvs;
use crate::metrics::QueryMetrics;
use crate::source_selection::{select_sources, SourceMap};
use crate::subquery::Subquery;
use lusail_endpoint::{
    Clock, EndpointFailure, EndpointId, ExecOptions, Federation, FederationError, QueryOutcome,
    RequestPolicy, SystemClock, TraceEvent,
};
use lusail_sparql::ast::{Expression, GroupPattern, Query};
use lusail_sparql::SolutionSet;
use std::sync::atomic::Ordering;
use std::sync::Arc;

/// Engine configuration.
#[derive(Debug, Clone)]
pub struct LusailConfig {
    /// Threshold policy for delayed subqueries (Fig. 9; default `μ+σ`).
    pub delay_policy: DelayPolicy,
    /// Bindings per `VALUES` block in bound subqueries.
    pub block_size: usize,
    /// Memoize ASK / COUNT / check-query results across queries.
    pub use_cache: bool,
    /// Row-count threshold for parallel hash-join probing.
    pub parallel_join_threshold: usize,
    /// Scale `VALUES` block sizes from the first block's observed response
    /// cardinality (see [`ExecConfig::adaptive_values`]). The adapted size
    /// never drops below `block_size`.
    pub adaptive_values: bool,
    /// Ablation switch: disable locality-aware decomposition. Every triple
    /// pattern becomes its own subquery (the §II strawman of evaluating
    /// each pattern independently); SAPE still schedules and joins them.
    pub disable_lade: bool,
    /// Capacity bound for the ASK / COUNT probe caches. `None` (the
    /// default, the paper's unbounded hash table) never evicts; a
    /// long-lived server sets a bound so cache memory stays proportional
    /// to it across millions of queries, with LRU eviction.
    pub probe_cache_capacity: Option<usize>,
}

impl Default for LusailConfig {
    fn default() -> Self {
        LusailConfig {
            delay_policy: DelayPolicy::MuSigma,
            block_size: 100,
            use_cache: true,
            parallel_join_threshold: 50_000,
            adaptive_values: true,
            disable_lade: false,
            probe_cache_capacity: None,
        }
    }
}

/// Aggregated probe-cache diagnostics (see [`Lusail::probe_cache_stats`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ProbeCacheStats {
    /// Lookups answered from the cache.
    pub hits: u64,
    /// Consulted-but-absent lookups.
    pub misses: u64,
    /// Entries dropped by the capacity bound (saturation signal).
    pub evictions: u64,
    /// Entries currently cached.
    pub entries: usize,
}

/// A query result: solutions plus the metrics the harnesses report.
#[derive(Debug, Clone)]
pub struct QueryResult {
    /// The solution set.
    pub solutions: SolutionSet,
    /// Phase timings and network counters.
    pub metrics: QueryMetrics,
    /// False when an endpoint failure (after retries) lost solution data.
    /// Degraded *probes* (ASK / COUNT / check queries) never clear this —
    /// they only cost extra work.
    pub complete: bool,
    /// Per-endpoint failure report for this query.
    pub failures: Vec<EndpointFailure>,
}

/// The Lusail federated query engine. One instance may serve many queries;
/// its caches persist across them (cleared with [`Lusail::clear_caches`]).
///
/// ```
/// use lusail_core::Lusail;
/// use lusail_endpoint::{Federation, LocalEndpoint};
/// use lusail_rdf::{Dictionary, Term};
/// use lusail_sparql::parse_query;
/// use lusail_store::TripleStore;
/// use std::sync::Arc;
///
/// // Two endpoints with an interlink: the author lives at A, the book
/// // (with its title) at B.
/// let dict = Dictionary::shared();
/// let mut a = TripleStore::new(Arc::clone(&dict));
/// a.insert_terms(
///     &Term::iri("http://a/alice"),
///     &Term::iri("http://x/wrote"),
///     &Term::iri("http://b/book1"),
/// );
/// let mut b = TripleStore::new(Arc::clone(&dict));
/// b.insert_terms(
///     &Term::iri("http://b/book1"),
///     &Term::iri("http://x/title"),
///     &Term::lit("Decentralized Graphs"),
/// );
/// let mut fed = Federation::new(Arc::clone(&dict));
/// fed.add(Arc::new(LocalEndpoint::new("A", a)));
/// fed.add(Arc::new(LocalEndpoint::new("B", b)));
///
/// let q = parse_query(
///     "SELECT ?who ?title WHERE { ?who <http://x/wrote> ?b . \
///      ?b <http://x/title> ?title }",
///     &dict,
/// )
/// .unwrap();
/// let result = Lusail::default().execute(&fed, &q).unwrap();
/// assert_eq!(result.solutions.len(), 1); // the cross-endpoint join row
/// assert_eq!(result.metrics.gjvs, ["b"]); // ?b is a global join variable
/// assert!(result.complete); // no endpoint failed
/// ```
pub struct Lusail {
    config: LusailConfig,
    policy: RequestPolicy,
    clock: Option<Arc<dyn Clock>>,
    ask_cache: ProbeCache<bool>,
    count_cache: ProbeCache<u64>,
    check_cache: KeyedCache<bool>,
}

impl Default for Lusail {
    fn default() -> Self {
        Lusail::new(LusailConfig::default())
    }
}

impl Lusail {
    /// Creates an engine with the given configuration and the default
    /// request policy.
    pub fn new(config: LusailConfig) -> Self {
        let caching = config.use_cache;
        let capacity = config.probe_cache_capacity;
        fn probe_cache<V: Copy>(caching: bool, capacity: Option<usize>) -> ProbeCache<V> {
            match capacity {
                Some(cap) => ProbeCache::with_capacity(caching, cap),
                None => ProbeCache::new(caching),
            }
        }
        Lusail {
            ask_cache: probe_cache(caching, capacity),
            count_cache: probe_cache(caching, capacity),
            check_cache: KeyedCache::new(caching),
            config,
            policy: RequestPolicy::default(),
            clock: None,
        }
    }

    /// Sets the retry/backoff/deadline policy for remote requests.
    pub fn with_policy(mut self, policy: RequestPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Injects a clock for backoff sleeps and deadlines (tests).
    pub fn with_clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// The engine's configuration.
    pub fn config(&self) -> &LusailConfig {
        &self.config
    }

    /// The engine's request policy.
    pub fn policy(&self) -> &RequestPolicy {
        &self.policy
    }

    /// Drops every memoized probe (between benchmark repetitions).
    pub fn clear_caches(&self) {
        self.ask_cache.clear();
        self.count_cache.clear();
        self.check_cache.clear();
    }

    /// Drops every memoized probe answer (ASK / COUNT / check) recorded
    /// against one endpoint, leaving other endpoints' entries intact.
    ///
    /// [`Lusail::finish`] already does this at the *end* of a query whose
    /// circuit opened; a long-lived server additionally calls it from a
    /// health-transition hook so the invalidation lands *mid-query*,
    /// before any concurrent tenant's next planning read.
    pub fn invalidate_endpoint_probes(&self, ep: lusail_endpoint::EndpointId) {
        self.ask_cache.invalidate_endpoint(ep);
        self.count_cache.invalidate_endpoint(ep);
        self.check_cache.invalidate_endpoint(ep);
    }

    /// Aggregated diagnostics over the ASK and COUNT probe caches —
    /// nonzero `evictions` means the configured capacity bound is
    /// saturated, the signal a serving layer watches.
    pub fn probe_cache_stats(&self) -> ProbeCacheStats {
        ProbeCacheStats {
            hits: self.ask_cache.hits() + self.count_cache.hits(),
            misses: self.ask_cache.misses() + self.count_cache.misses(),
            evictions: self.ask_cache.evictions() + self.count_cache.evictions(),
            entries: self.ask_cache.len() + self.count_cache.len(),
        }
    }

    /// A fresh per-query network context: endpoint death (tripped circuit)
    /// and degradation counters are scoped to one query.
    pub(crate) fn fresh_net(&self) -> Net {
        self.fresh_net_with(&ExecOptions::default())
    }

    /// [`Lusail::fresh_net`] configured from per-call [`ExecOptions`]:
    /// the trace sink and worker budget are threaded through the request
    /// client and handler, and an options deadline overrides the policy's
    /// `query_budget` for this query.
    pub(crate) fn fresh_net_with(&self, opts: &ExecOptions) -> Net {
        let mut policy = self.policy;
        if let Some(deadline) = opts.deadline {
            policy.query_budget = deadline;
        }
        Net::build(
            policy,
            self.timing_clock(),
            opts.trace.clone(),
            opts.thread_budget(),
            opts.on_health_transition.clone(),
        )
    }

    /// The clock phase timings (and retry backoff) are measured against:
    /// the injected test clock when present, otherwise the system clock.
    pub(crate) fn timing_clock(&self) -> Arc<dyn Clock> {
        match &self.clock {
            Some(clock) => clock.clone(),
            None => Arc::new(SystemClock::default()),
        }
    }

    /// Stamps the degradation counters into `metrics` and derives the
    /// completeness flag and failure report for this query's [`Net`].
    pub(crate) fn finish(
        &self,
        fed: &Federation,
        net: &Net,
        metrics: &mut QueryMetrics,
    ) -> (bool, Vec<EndpointFailure>) {
        metrics.degraded_ask_probes = net
            .degradation
            .asks_assumed_relevant
            .load(Ordering::Relaxed);
        metrics.degraded_check_queries = net
            .degradation
            .checks_assumed_conflict
            .load(Ordering::Relaxed);
        metrics.degraded_count_probes = net.degradation.counts_defaulted.load(Ordering::Relaxed);
        let report = net.client.report(fed);
        // Any endpoint whose circuit opened during this query may have
        // answered probes *before* it started failing; those memoized
        // answers are suspect (the endpoint may come back with different
        // data, or its group may be served by a replica next time), so
        // per-endpoint cache entries are dropped rather than trusted.
        for failure in report.iter().filter(|f| f.dead) {
            self.ask_cache.invalidate_endpoint(failure.endpoint);
            self.count_cache.invalidate_endpoint(failure.endpoint);
            self.check_cache.invalidate_endpoint(failure.endpoint);
            // Offline statistics summarize the *primary's* store; once the
            // group is served by a replica (which may have diverged), a
            // conclusive local answer can no longer be trusted, so the
            // stats are dropped exactly like the memoized probe answers.
            fed.invalidate_stats(failure.endpoint);
        }
        (!net.degradation.data_loss(), report)
    }

    /// Executes a query against the federation with default options.
    /// Endpoint failures degrade gracefully (see
    /// [`QueryResult::complete`]); only federation-level misuse is an
    /// `Err`.
    pub fn execute(&self, fed: &Federation, query: &Query) -> Result<QueryResult, FederationError> {
        self.execute_with(fed, query, &ExecOptions::default())
    }

    /// [`Lusail::execute`] under explicit [`ExecOptions`]: structured
    /// tracing (every remote request, planning decision, and join step is
    /// recorded into `opts.trace`; a no-op when the sink is disabled), the
    /// worker-thread budget for dispatch and joins, and an optional
    /// per-query deadline. The final event of an enabled trace is always
    /// [`TraceEvent::QueryFinished`]. Results, work counters, and traces
    /// are byte-identical at every thread budget.
    pub fn execute_with(
        &self,
        fed: &Federation,
        query: &Query,
        opts: &ExecOptions,
    ) -> Result<QueryResult, FederationError> {
        if fed.is_empty() {
            return Err(FederationError::EmptyFederation);
        }
        let net = self.fresh_net_with(opts);
        let result = self.execute_with_net(fed, query, &net);
        opts.trace.emit(|| TraceEvent::QueryFinished {
            rows: result.solutions.len(),
            complete: result.complete,
        });
        Ok(result)
    }

    fn execute_with_net(&self, fed: &Federation, query: &Query, net: &Net) -> QueryResult {
        // A federated `SELECT (COUNT(*) AS ?c)` must count the *global*
        // result, not concatenate per-endpoint counts: normalize it to an
        // aggregate query handled at the mediator.
        if let Some(rewritten) = query.count_star_as_aggregate() {
            return self.execute_with_net(fed, &rewritten, net);
        }
        let mut metrics = QueryMetrics::default();
        // Phase timings come from the same (injectable) clock the request
        // client uses, so EXPLAIN ANALYZE is deterministic under the test
        // clock: a `ManualClock` only advances on simulated sleeps.
        let clock = self.timing_clock();
        let t_total = clock.now();

        if let Some((endpoints, sets)) = fed.stats_overview() {
            net.trace
                .emit(|| TraceEvent::StatsLoaded { endpoints, sets });
        }

        // ---- Phase 1: source selection --------------------------------
        let s0 = fed.stats_snapshot();
        let t0 = clock.now();
        let sources = select_sources(fed, &query.pattern, &self.ask_cache, net);
        metrics.source_selection = clock.now().saturating_sub(t0);
        let s1 = fed.stats_snapshot();
        metrics.requests_source_selection = s1.since(&s0);

        // A required pattern with no source ⇒ empty result, no more work.
        if sources.any_required_empty(&query.pattern.triples) {
            metrics.total = clock.now().saturating_sub(t_total);
            let (complete, failures) = self.finish(fed, net, &mut metrics);
            return QueryResult {
                solutions: SolutionSet::empty(query.output_vars()),
                metrics,
                complete,
                failures,
            };
        }

        // ---- Phase 2: analysis (LADE + cost model) ---------------------
        let t1 = clock.now();
        let analysis = if self.config.disable_lade {
            crate::gjv::GjvAnalysis::default()
        } else {
            detect_gjvs(
                fed,
                &query.pattern.triples,
                &sources,
                &self.check_cache,
                net,
            )
        };
        metrics.check_queries = analysis.check_queries;
        metrics.gjvs = analysis.gjvs.clone();

        // Disjoint fast path (Algorithm 3, line 2): the entire query can be
        // answered independently at each endpoint.
        let order_vars_projected = {
            let out = query.output_vars();
            query.order_by.iter().all(|k| out.contains(&k.var))
        };
        let simple_pattern = query.pattern.optionals.is_empty()
            && query.pattern.unions.is_empty()
            && query.pattern.not_exists.is_empty()
            && query.pattern.values.is_none()
            && query.aggregates.is_empty()
            && order_vars_projected
            && !query.pattern.triples.is_empty();
        if !self.config.disable_lade
            && simple_pattern
            && is_disjoint(&query.pattern.triples, &sources, &analysis)
        {
            metrics.analysis = clock.now().saturating_sub(t1);
            let s2 = fed.stats_snapshot();
            metrics.requests_analysis = s2.since(&s1);
            metrics.subqueries = 1;
            net.trace.emit(|| TraceEvent::Decomposed {
                subqueries: 1,
                gjvs: analysis.gjvs.len(),
            });
            let t2 = clock.now();
            let solutions = self.execute_disjoint(fed, query, &sources, net);
            metrics.execution = clock.now().saturating_sub(t2);
            metrics.requests_execution = fed.stats_snapshot().since(&s2);
            metrics.result_rows = solutions.len();
            metrics.total = clock.now().saturating_sub(t_total);
            let (complete, failures) = self.finish(fed, net, &mut metrics);
            return QueryResult {
                solutions,
                metrics,
                complete,
                failures,
            };
        }

        // General path: decompose, estimate, and plan the top-level group.
        let mut subqueries = if self.config.disable_lade {
            let subqueries = singleton_subqueries(&query.pattern.triples, &sources);
            net.trace.emit(|| TraceEvent::Decomposed {
                subqueries: subqueries.len(),
                gjvs: analysis.gjvs.len(),
            });
            subqueries
        } else {
            decompose_traced(&query.pattern.triples, &sources, &analysis, &net.trace)
        };
        let global_filters = push_filters(&query.pattern.filters, &mut subqueries);
        shrink_projections(query, &mut subqueries, &global_filters);
        metrics.subqueries = subqueries.len();

        let costs = if subqueries.len() > 1 {
            let cardinality = estimate_cardinalities(fed, net, &subqueries, &self.count_cache);
            let fanouts: Vec<usize> = subqueries.iter().map(|sq| sq.sources.len()).collect();
            let decision = decide_delays_detailed(&cardinality, &fanouts, self.config.delay_policy);
            for (i, sq) in subqueries.iter().enumerate() {
                net.trace.emit(|| TraceEvent::SubqueryPlanned {
                    index: i,
                    patterns: sq
                        .triples
                        .iter()
                        .map(|tp| render_pattern(tp, fed.dict()))
                        .collect(),
                    sources: sq.sources.len(),
                    cardinality: cardinality[i],
                    fanout: fanouts[i],
                    delayed: decision.delayed[i],
                    delay_reason: decision.reason(i, cardinality[i], fanouts[i]),
                });
            }
            SubqueryCosts {
                cardinality,
                delayed: decision.delayed,
            }
        } else {
            for (i, sq) in subqueries.iter().enumerate() {
                net.trace.emit(|| TraceEvent::SubqueryPlanned {
                    index: i,
                    patterns: sq
                        .triples
                        .iter()
                        .map(|tp| render_pattern(tp, fed.dict()))
                        .collect(),
                    sources: sq.sources.len(),
                    cardinality: 0,
                    fanout: sq.sources.len(),
                    delayed: false,
                    delay_reason: None,
                });
            }
            SubqueryCosts {
                cardinality: vec![0; subqueries.len()],
                delayed: vec![false; subqueries.len()],
            }
        };
        metrics.analysis = clock.now().saturating_sub(t1);
        let s2 = fed.stats_snapshot();
        metrics.requests_analysis = s2.since(&s1);

        // ---- Phase 3: execution (SAPE) ---------------------------------
        let t2 = clock.now();
        let exec_cfg = ExecConfig::for_engine(&self.config, net.threads);
        let (mut solutions, report) = evaluate_subqueries(fed, net, &subqueries, &costs, &exec_cfg);
        metrics.delayed_subqueries = report.delayed;

        // Combine the nested groups at the global level.
        solutions = self.apply_nested(fed, &query.pattern, solutions, &global_filters, net);

        // Query-level modifiers (aggregation, ORDER BY over the full
        // schema, projection, DISTINCT, LIMIT) happen here, at the
        // mediator, over the complete federated solution sequence. The
        // paper notes Lusail's LIMIT is naive: compute everything, return
        // the first `limit` rows (see the C4 discussion, §VI-C).
        solutions = lusail_store::eval::apply_modifiers(solutions, query, fed.dict());

        metrics.execution = clock.now().saturating_sub(t2);
        metrics.requests_execution = fed.stats_snapshot().since(&s2);
        metrics.result_rows = solutions.len();
        metrics.total = clock.now().saturating_sub(t_total);
        let (complete, failures) = self.finish(fed, net, &mut metrics);
        QueryResult {
            solutions,
            metrics,
            complete,
            failures,
        }
    }

    /// Disjoint fast path: the original query (projection, filters,
    /// DISTINCT, LIMIT and all) goes verbatim to every relevant endpoint;
    /// results are concatenated.
    pub(crate) fn execute_disjoint(
        &self,
        fed: &Federation,
        query: &Query,
        sources: &SourceMap,
        net: &Net,
    ) -> SolutionSet {
        let eps: Vec<EndpointId> = sources.sources(&query.pattern.triples[0]).to_vec();
        let tasks: Vec<(EndpointId, ())> = eps.iter().map(|&ep| (ep, ())).collect();
        let results = net.handler.run(fed, tasks, |ep_id, _, _| {
            net.select_or_lose(fed, ep_id, query, query.output_vars())
        });
        let mut out = SolutionSet::empty(query.output_vars());
        for (_, _, sols) in results {
            out.append(sols);
        }
        // Endpoints already projected; re-establish the global ordering
        // and modifiers over the concatenation.
        lusail_store::eval::apply_order(&mut out, &query.order_by, fed.dict());
        if query.distinct {
            out.dedup();
        }
        if let Some(limit) = query.limit {
            out.truncate(limit);
        }
        out
    }

    /// Evaluates a nested group (OPTIONAL / UNION / NOT EXISTS bodies)
    /// recursively: its own decomposition and SAPE execution, producing a
    /// solution set over the group's variables.
    fn execute_group(&self, fed: &Federation, group: &GroupPattern, net: &Net) -> SolutionSet {
        // Source selection for this group's patterns (cache-served when the
        // engine probed them already during the main pass).
        let sources = select_sources(fed, group, &self.ask_cache, net);
        if sources.any_required_empty(&group.triples) {
            return SolutionSet::empty(group.all_vars());
        }
        let analysis = detect_gjvs(fed, &group.triples, &sources, &self.check_cache, net);
        let mut subqueries = decompose(&group.triples, &sources, &analysis);
        let global_filters = push_filters(&group.filters, &mut subqueries);
        // Nested groups keep full projections: their consumers are joins.
        let costs = if subqueries.len() > 1 {
            let cardinality = estimate_cardinalities(fed, net, &subqueries, &self.count_cache);
            let fanouts: Vec<usize> = subqueries.iter().map(|sq| sq.sources.len()).collect();
            let delayed = decide_delays(&cardinality, &fanouts, self.config.delay_policy);
            SubqueryCosts {
                cardinality,
                delayed,
            }
        } else {
            SubqueryCosts {
                cardinality: vec![0; subqueries.len()],
                delayed: vec![false; subqueries.len()],
            }
        };
        let exec_cfg = ExecConfig::for_engine(&self.config, net.threads);
        let (solutions, _) = evaluate_subqueries(fed, net, &subqueries, &costs, &exec_cfg);
        self.apply_nested(fed, group, solutions, &global_filters, net)
    }

    /// Applies a group's nested clauses to already-computed BGP solutions:
    /// VALUES join, UNION joins, OPTIONAL left joins, NOT EXISTS anti
    /// joins, and the remaining (un-pushed) filters.
    fn apply_nested(
        &self,
        fed: &Federation,
        group: &GroupPattern,
        mut solutions: SolutionSet,
        global_filters: &[Expression],
        net: &Net,
    ) -> SolutionSet {
        if let Some(v) = &group.values {
            let values_rel = SolutionSet {
                vars: v.vars.clone(),
                rows: v.rows.clone(),
            };
            solutions = solutions.hash_join(&values_rel);
        }
        solutions = lusail_store::eval::join_nested_groups(solutions, group, fed.dict(), |sub| {
            self.execute_group(fed, sub, net)
        });
        lusail_store::eval::retain_filtered(&mut solutions, global_filters, fed.dict());
        solutions
    }
}

/// What compile-time planning decided for a conjunctive query. Mirrors
/// the branch structure of `execute_with_net` exactly so a caller holding
/// the same [`Net`] can complete execution without re-running (and
/// re-paying for) source selection — failed ASK probes are not cached, so
/// planning twice costs real wire requests against degraded federations.
pub(crate) enum ConjunctivePlan {
    /// A required pattern has no relevant source: the answer is empty.
    Empty,
    /// The disjoint fast path applies (Algorithm 3, line 2): ship the
    /// whole query to each relevant endpoint and concatenate.
    Disjoint(SourceMap),
    /// Decomposed subqueries ready for (shared) evaluation; any filters
    /// that could not be pushed apply at the mediator after the joins.
    Planned {
        subqueries: Vec<Subquery>,
        costs: SubqueryCosts,
        global_filters: Vec<Expression>,
    },
}

impl Lusail {
    /// Compile-time planning for a *conjunctive* query: source selection,
    /// LADE, the disjoint check, filter pushdown, projection shrinking,
    /// and the cost model. The returned [`ConjunctivePlan`] reproduces
    /// `execute_with_net`'s own routing decisions, so executing it against
    /// the same [`Net`] yields the same answers and the same wire traffic
    /// as a solo run. Callers must pre-screen queries with nested clauses,
    /// aggregates, non-SELECT forms, empty patterns, or `disable_lade` —
    /// those take paths this planner does not model. Used by the
    /// multi-query optimizer.
    pub(crate) fn plan_conjunctive(
        &self,
        fed: &Federation,
        query: &Query,
        net: &Net,
    ) -> ConjunctivePlan {
        let sources = select_sources(fed, &query.pattern, &self.ask_cache, net);
        if sources.any_required_empty(&query.pattern.triples) {
            return ConjunctivePlan::Empty;
        }
        let analysis = detect_gjvs(
            fed,
            &query.pattern.triples,
            &sources,
            &self.check_cache,
            net,
        );
        let order_vars_projected = {
            let out = query.output_vars();
            query.order_by.iter().all(|k| out.contains(&k.var))
        };
        let simple_pattern = query.pattern.optionals.is_empty()
            && query.pattern.unions.is_empty()
            && query.pattern.not_exists.is_empty()
            && query.pattern.values.is_none()
            && query.aggregates.is_empty()
            && order_vars_projected
            && !query.pattern.triples.is_empty();
        if simple_pattern && is_disjoint(&query.pattern.triples, &sources, &analysis) {
            return ConjunctivePlan::Disjoint(sources);
        }
        let mut subqueries =
            decompose_traced(&query.pattern.triples, &sources, &analysis, &net.trace);
        let global_filters = push_filters(&query.pattern.filters, &mut subqueries);
        shrink_projections(query, &mut subqueries, &global_filters);
        let costs = if subqueries.len() > 1 {
            let cardinality = estimate_cardinalities(fed, net, &subqueries, &self.count_cache);
            let fanouts: Vec<usize> = subqueries.iter().map(|sq| sq.sources.len()).collect();
            let decision = decide_delays_detailed(&cardinality, &fanouts, self.config.delay_policy);
            for (i, sq) in subqueries.iter().enumerate() {
                net.trace.emit(|| TraceEvent::SubqueryPlanned {
                    index: i,
                    patterns: sq
                        .triples
                        .iter()
                        .map(|tp| render_pattern(tp, fed.dict()))
                        .collect(),
                    sources: sq.sources.len(),
                    cardinality: cardinality[i],
                    fanout: fanouts[i],
                    delayed: decision.delayed[i],
                    delay_reason: decision.reason(i, cardinality[i], fanouts[i]),
                });
            }
            SubqueryCosts {
                cardinality,
                delayed: decision.delayed,
            }
        } else {
            SubqueryCosts {
                cardinality: vec![0; subqueries.len()],
                delayed: vec![false; subqueries.len()],
            }
        };
        ConjunctivePlan::Planned {
            subqueries,
            costs,
            global_filters,
        }
    }
}

impl lusail_endpoint::FederatedEngine for Lusail {
    fn engine_name(&self) -> &str {
        "Lusail"
    }

    fn run_with(
        &self,
        fed: &Federation,
        query: &Query,
        opts: &ExecOptions,
    ) -> Result<QueryOutcome, FederationError> {
        let result = self.execute_with(fed, query, opts)?;
        Ok(QueryOutcome {
            solutions: result.solutions,
            complete: result.complete,
            failures: result.failures,
        })
    }

    fn reset(&self) {
        self.clear_caches();
    }
}

/// One subquery per triple pattern (LADE disabled): the §II strawman.
fn singleton_subqueries(
    triples: &[lusail_sparql::ast::TriplePattern],
    sources: &SourceMap,
) -> Vec<Subquery> {
    triples
        .iter()
        .map(|tp| Subquery::new(vec![tp.clone()], sources.sources(tp).to_vec()))
        .collect()
}

/// Pushes each filter into every subquery containing all its variables;
/// returns the filters that could not be pushed (applied globally).
fn push_filters(filters: &[Expression], subqueries: &mut [Subquery]) -> Vec<Expression> {
    crate::subquery::push_filters_into(filters, subqueries)
}

/// Shrinks each subquery's projection to the variables actually needed
/// downstream: query outputs, global filter variables, and join variables
/// shared with other subqueries or nested groups.
fn shrink_projections(query: &Query, subqueries: &mut [Subquery], global_filters: &[Expression]) {
    let mut needed: Vec<String> = query.output_vars();
    // Aggregate *input* variables and ORDER BY keys are consumed at the
    // mediator but are not output columns; they must still be shipped.
    for a in &query.aggregates {
        if let Some(v) = &a.var {
            if !needed.contains(v) {
                needed.push(v.clone());
            }
        }
    }
    for k in &query.order_by {
        if !needed.contains(&k.var) {
            needed.push(k.var.clone());
        }
    }
    for f in global_filters {
        for v in f.vars() {
            if !needed.contains(&v) {
                needed.push(v);
            }
        }
    }
    // Join variables: appearing in ≥2 subqueries or in a nested group.
    let mut nested_vars: Vec<String> = Vec::new();
    for g in query
        .pattern
        .optionals
        .iter()
        .chain(query.pattern.not_exists.iter())
        .chain(query.pattern.unions.iter().flatten())
    {
        g.collect_vars(&mut nested_vars);
    }
    if let Some(v) = &query.pattern.values {
        nested_vars.extend(v.vars.iter().cloned());
    }
    let n = subqueries.len();
    for i in 0..n {
        let vars = subqueries[i].vars();
        let keep: Vec<String> = vars
            .into_iter()
            .filter(|v| {
                needed.contains(v)
                    || nested_vars.contains(v)
                    || (0..n).any(|j| j != i && subqueries[j].mentions(v))
            })
            .collect();
        if !keep.is_empty() {
            subqueries[i].projection = keep;
        }
        // An all-constant or fully-local subquery keeps its default
        // projection so the relation still witnesses existence.
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_endpoint::LocalEndpoint;
    use lusail_rdf::{Dictionary, Term};
    use lusail_sparql::parse_query;
    use lusail_store::TripleStore;
    use std::sync::Arc;

    /// Two universities with a degree interlink (the paper's Fig. 1/2
    /// running example), plus the oracle union store.
    fn universities() -> (Federation, TripleStore) {
        let dict = Dictionary::shared();
        let ub = |l: &str| Term::iri(format!("http://ub/{l}"));
        let e1 = |l: &str| Term::iri(format!("http://ep1/{l}"));
        let e2 = |l: &str| Term::iri(format!("http://ep2/{l}"));

        let mut all = TripleStore::new(Arc::clone(&dict));
        let mut ep1 = TripleStore::new(Arc::clone(&dict));
        let mut ep2 = TripleStore::new(Arc::clone(&dict));
        {
            let mut add1 = |s: &Term, p: &Term, o: &Term| {
                ep1.insert_terms(s, p, o);
                all.insert_terms(s, p, o);
            };
            add1(&e1("Kim"), &ub("advisor"), &e1("Joy"));
            add1(&e1("Kim"), &ub("takesCourse"), &e1("c1"));
            add1(&e1("Joy"), &ub("teacherOf"), &e1("c1"));
            add1(&e1("Joy"), &ub("PhDDegreeFrom"), &e1("CMU"));
            add1(&e1("CMU"), &ub("address"), &Term::lit("CCCC"));
            add1(&e1("MIT"), &ub("address"), &Term::lit("XXX"));
        }
        {
            let mut add2 = |s: &Term, p: &Term, o: &Term| {
                ep2.insert_terms(s, p, o);
                all.insert_terms(s, p, o);
            };
            add2(&e2("Lee"), &ub("advisor"), &e2("Tim"));
            add2(&e2("Lee"), &ub("takesCourse"), &e2("c3"));
            add2(&e2("Tim"), &ub("teacherOf"), &e2("c3"));
            add2(&e2("Tim"), &ub("PhDDegreeFrom"), &e1("MIT"));
            add2(&e2("Kim2"), &ub("advisor"), &e2("Tim"));
            add2(&e2("Kim2"), &ub("takesCourse"), &e2("c3"));
        }
        let mut fed = Federation::new(Arc::clone(&dict));
        fed.add(Arc::new(LocalEndpoint::new("EP1", ep1)));
        fed.add(Arc::new(LocalEndpoint::new("EP2", ep2)));
        (fed, all)
    }

    fn check_against_oracle(fed: &Federation, oracle: &TripleStore, text: &str) -> QueryResult {
        let q = parse_query(text, fed.dict()).unwrap();
        let engine = Lusail::default();
        let result = engine.execute(fed, &q).unwrap();
        let expected = lusail_store::eval::evaluate(oracle, &q);
        assert_eq!(
            result.solutions.canonicalize(),
            expected.canonicalize(),
            "federated result differs from centralized oracle for {text}"
        );
        result
    }

    #[test]
    fn qa_traverses_the_interlink() {
        let (fed, oracle) = universities();
        // The paper's Qa: advisors' alma mater and its address. The
        // (Tim, MIT, "XXX") row requires joining EP2 data with EP1 data.
        let r = check_against_oracle(
            &fed,
            &oracle,
            "PREFIX ub: <http://ub/> SELECT ?S ?P ?U ?A WHERE { \
               ?S ub:advisor ?P . ?S ub:takesCourse ?C . \
               ?P ub:PhDDegreeFrom ?U . ?U ub:address ?A }",
        );
        assert_eq!(r.solutions.len(), 3); // Kim, Lee, Kim2 rows
        assert!(r.metrics.gjvs.contains(&"U".to_string()));
        assert!(r.metrics.subqueries >= 2);
    }

    #[test]
    fn disjoint_query_uses_fast_path() {
        let (fed, oracle) = universities();
        let r = check_against_oracle(
            &fed,
            &oracle,
            "PREFIX ub: <http://ub/> SELECT ?S ?P WHERE { \
               ?S ub:advisor ?P . ?S ub:takesCourse ?C }",
        );
        assert_eq!(r.metrics.subqueries, 1);
        assert!(r.metrics.gjvs.is_empty());
        assert_eq!(r.solutions.len(), 3);
    }

    #[test]
    fn optional_query_matches_oracle() {
        let (fed, oracle) = universities();
        let r = check_against_oracle(
            &fed,
            &oracle,
            "PREFIX ub: <http://ub/> SELECT ?P ?U ?A WHERE { \
               ?P ub:PhDDegreeFrom ?U . OPTIONAL { ?U ub:address ?A } }",
        );
        assert_eq!(r.solutions.len(), 2);
    }

    #[test]
    fn union_query_matches_oracle() {
        let (fed, oracle) = universities();
        check_against_oracle(
            &fed,
            &oracle,
            "PREFIX ub: <http://ub/> SELECT ?x ?y WHERE { \
               { ?x ub:advisor ?y } UNION { ?x ub:teacherOf ?y } }",
        );
    }

    #[test]
    fn filter_pushdown_matches_oracle() {
        let (fed, oracle) = universities();
        let r = check_against_oracle(
            &fed,
            &oracle,
            "PREFIX ub: <http://ub/> SELECT ?U ?A WHERE { \
               ?P ub:PhDDegreeFrom ?U . ?U ub:address ?A . FILTER (?A = \"XXX\") }",
        );
        assert_eq!(r.solutions.len(), 1);
    }

    #[test]
    fn not_exists_matches_oracle() {
        let (fed, oracle) = universities();
        // Advisors who teach nothing: none in this data (Joy and Tim both
        // teach), so empty.
        let r = check_against_oracle(
            &fed,
            &oracle,
            "PREFIX ub: <http://ub/> SELECT ?P WHERE { \
               ?S ub:advisor ?P . FILTER NOT EXISTS { ?P ub:teacherOf ?c } }",
        );
        assert_eq!(r.solutions.len(), 0);
    }

    #[test]
    fn distinct_and_limit_apply_globally() {
        let (fed, oracle) = universities();
        let r = check_against_oracle(
            &fed,
            &oracle,
            "PREFIX ub: <http://ub/> SELECT DISTINCT ?P WHERE { ?S ub:advisor ?P }",
        );
        assert_eq!(r.solutions.len(), 2);
        let q = parse_query(
            "PREFIX ub: <http://ub/> SELECT ?S WHERE { ?S ub:advisor ?P } LIMIT 2",
            fed.dict(),
        )
        .unwrap();
        let engine = Lusail::default();
        let r = engine.execute(&fed, &q).unwrap();
        assert_eq!(r.solutions.len(), 2);
    }

    #[test]
    fn no_source_pattern_yields_empty() {
        let (fed, _) = universities();
        let q = parse_query("SELECT ?x WHERE { ?x <http://nowhere/p> ?y }", fed.dict()).unwrap();
        let engine = Lusail::default();
        let r = engine.execute(&fed, &q).unwrap();
        assert!(r.solutions.is_empty());
        assert_eq!(r.metrics.total_requests(), 2); // two ASKs
    }

    #[test]
    fn values_in_query_restricts_results() {
        let (fed, oracle) = universities();
        check_against_oracle(
            &fed,
            &oracle,
            "PREFIX ub: <http://ub/> SELECT ?S ?P WHERE { \
               ?S ub:advisor ?P . VALUES ?P { <http://ep2/Tim> } }",
        );
    }

    #[test]
    fn caches_reduce_requests_on_repeat() {
        let (fed, _) = universities();
        let q = parse_query(
            "PREFIX ub: <http://ub/> SELECT ?S ?P ?U ?A WHERE { \
               ?S ub:advisor ?P . ?S ub:takesCourse ?C . \
               ?P ub:PhDDegreeFrom ?U . ?U ub:address ?A }",
            fed.dict(),
        )
        .unwrap();
        let engine = Lusail::default();
        let r1 = engine.execute(&fed, &q).unwrap();
        let r2 = engine.execute(&fed, &q).unwrap();
        assert_eq!(r1.solutions.canonicalize(), r2.solutions.canonicalize());
        // Second run: all probes cached.
        assert_eq!(r2.metrics.requests_source_selection.total_requests(), 0);
        assert!(
            r2.metrics.requests_analysis.total_requests()
                < r1.metrics.requests_analysis.total_requests()
                || r1.metrics.requests_analysis.total_requests() == 0
        );
    }
}
