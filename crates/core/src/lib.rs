//! Lusail: scalable SPARQL query processing over decentralized RDF graphs
//! (Abdelaziz et al., ICDE 2017).
//!
//! The engine processes a federated query in three phases, mirroring the
//! paper's architecture (Fig. 4):
//!
//! 1. **Source selection** ([`source_selection`]) — one `ASK` per triple
//!    pattern per endpoint, memoized in a cache shared across queries.
//! 2. **Query analysis / LADE** ([`gjv`], [`decompose`]) — locality-aware
//!    decomposition. Check queries (`FILTER NOT EXISTS … LIMIT 1`) detect
//!    *global join variables*: join variables whose instances are not
//!    co-located at the endpoints. Triple patterns are grouped into
//!    maximal subqueries that endpoints can answer locally without losing
//!    results (Algorithms 1 and 2).
//! 3. **Query execution / SAPE** ([`cost`], [`exec`], [`join`]) —
//!    selectivity-aware parallel execution. Per-pattern `COUNT` probes
//!    feed a cost model; subqueries with outlying estimated cardinality or
//!    endpoint fan-out (threshold `μ+σ` after Chauvenet outlier
//!    rejection) are *delayed* and later evaluated as bound subqueries
//!    over `VALUES` blocks of already-found bindings. Non-delayed
//!    subqueries run concurrently, one worker per endpoint, and results
//!    are combined with dynamic-programming-ordered partitioned hash
//!    joins.
//!
//! Entry point: [`Lusail::execute`].

pub mod cache;
pub mod cluster;
pub mod cost;
pub mod decompose;
pub mod engine;
pub mod exec;
pub mod explain;
pub mod gjv;
pub mod join;
pub mod metrics;
pub mod mqo;
pub mod source_selection;
pub mod subquery;
pub mod trace;

pub use cluster::LusailCluster;
pub use cost::DelayPolicy;
pub use engine::{Lusail, LusailConfig, ProbeCacheStats, QueryResult};
pub use explain::{render_analyze, QueryPlan, SubqueryPlan};
pub use metrics::QueryMetrics;
pub use mqo::{subquery_signature, BatchItem, BatchOutcome, BatchReport};
pub use subquery::Subquery;
pub use trace::{QueryTrace, RequestKind, RequestSummary, TraceEvent, TraceSink};
