//! Offline per-endpoint statistics: characteristic sets and predicate
//! summaries that let a planner answer relevance and cardinality
//! questions *locally*, eliding the wire probe it would otherwise issue
//! (Odyssey-style planning over precomputed characteristic sets).
//!
//! The correctness bar is strict: a conclusive answer from
//! [`EndpointStats`] must be *exactly* the answer the corresponding wire
//! probe would have returned against the same store. Anything the
//! summaries cannot decide exactly is `None`, and the caller falls back
//! to the wire. Under that contract statistics can only remove requests,
//! never change results.
//!
//! The build is a single pass over the store's subject-grouped index:
//! every subject's sorted predicate signature is its *characteristic
//! set*; subjects sharing a signature aggregate into one
//! [`CharacteristicSet`] with per-predicate triple counts. Alongside the
//! sets the pass derives per-predicate totals ([`PredicateSummary`]) and
//! the subject/object join-degree summary (`objects_foreign`) Lusail's
//! home checks ask about.

use crate::backend::StorageBackend;
use lusail_rdf::{Dictionary, FxHashMap, FxHashSet, Term, TermId};
use lusail_sparql::ast::TriplePattern;

/// Serialization format tag (first line of a stats file).
pub const STATS_FORMAT: &str = "lusail-stats/v1";

/// One characteristic set: the subjects whose predicate signature is
/// exactly `predicates`, with per-predicate triple totals.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CharacteristicSet {
    /// The signature: the distinct predicates of these subjects, sorted
    /// by term id.
    pub predicates: Vec<TermId>,
    /// Number of subjects with exactly this signature.
    pub subjects: u64,
    /// Triples per signature predicate (parallel to `predicates`),
    /// summed over the set's subjects.
    pub triples: Vec<u64>,
}

impl CharacteristicSet {
    /// True if the signature contains `p`.
    pub fn has(&self, p: TermId) -> bool {
        self.predicates.binary_search(&p).is_ok()
    }
}

/// Per-predicate totals, derived from the same scan that builds the
/// characteristic sets.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredicateSummary {
    /// Triples with this predicate.
    pub triples: u64,
    /// Distinct subjects.
    pub subjects: u64,
    /// Distinct objects.
    pub objects: u64,
    /// Distinct objects that never occur as a *subject* of any local
    /// triple — the values a GJV home check would report as foreign.
    /// Literal objects count (they are never subjects), exactly as the
    /// wire home-check query would return them.
    pub objects_foreign: u64,
}

/// The statistics layer for one endpoint, built offline from its store.
#[derive(Debug, Clone, Default)]
pub struct EndpointStats {
    /// Total triples in the summarized store.
    pub total_triples: u64,
    /// The characteristic sets, ordered by signature.
    pub sets: Vec<CharacteristicSet>,
    /// Per-predicate summaries.
    pub predicates: FxHashMap<TermId, PredicateSummary>,
}

impl EndpointStats {
    /// Scans `store` into its statistics. One pass over the
    /// subject-grouped index (any [`StorageBackend`], via its
    /// `for_each_spo` iterator); planning work, so nothing is charged to
    /// the store's `rows_scanned` counter.
    pub fn build(store: &dyn StorageBackend) -> EndpointStats {
        let mut subjects: FxHashSet<TermId> = FxHashSet::default();
        let mut per_pred: FxHashMap<TermId, (u64, FxHashSet<TermId>, FxHashSet<TermId>)> =
            FxHashMap::default();
        // signature -> (subject count, per-predicate triple counts)
        let mut sigs: FxHashMap<Vec<TermId>, (u64, Vec<u64>)> = FxHashMap::default();

        let mut current: Option<TermId> = None;
        let mut sig: Vec<TermId> = Vec::new();
        let mut counts: Vec<u64> = Vec::new();
        let mut flush = |sig: &mut Vec<TermId>, counts: &mut Vec<u64>| {
            if sig.is_empty() {
                return;
            }
            // Sort the signature (with its parallel counts) by term id.
            let mut paired: Vec<(TermId, u64)> = sig.drain(..).zip(counts.drain(..)).collect();
            paired.sort_by_key(|&(p, _)| p);
            let signature: Vec<TermId> = paired.iter().map(|&(p, _)| p).collect();
            let entry = sigs
                .entry(signature)
                .or_insert_with(|| (0, vec![0; paired.len()]));
            entry.0 += 1;
            for (slot, (_, n)) in entry.1.iter_mut().zip(&paired) {
                *slot += n;
            }
        };

        store.for_each_spo(&mut |s, p, o| {
            subjects.insert(s);
            let pred = per_pred
                .entry(p)
                .or_insert_with(|| (0, FxHashSet::default(), FxHashSet::default()));
            pred.0 += 1;
            pred.1.insert(s);
            pred.2.insert(o);
            if current != Some(s) {
                flush(&mut sig, &mut counts);
                current = Some(s);
            }
            // The SPO index groups a subject's triples by predicate, so a
            // new predicate for the current subject extends the signature.
            match sig.last() {
                Some(&last) if last == p => *counts.last_mut().expect("parallel") += 1,
                _ => {
                    sig.push(p);
                    counts.push(1);
                }
            }
        });
        flush(&mut sig, &mut counts);

        let predicates = per_pred
            .into_iter()
            .map(|(p, (triples, subj, obj))| {
                let objects_foreign = obj.iter().filter(|o| !subjects.contains(o)).count() as u64;
                (
                    p,
                    PredicateSummary {
                        triples,
                        subjects: subj.len() as u64,
                        objects: obj.len() as u64,
                        objects_foreign,
                    },
                )
            })
            .collect();

        let mut sets: Vec<CharacteristicSet> = sigs
            .into_iter()
            .map(|(predicates, (subjects, triples))| CharacteristicSet {
                predicates,
                subjects,
                triples,
            })
            .collect();
        sets.sort_by(|a, b| a.predicates.cmp(&b.predicates));

        EndpointStats {
            total_triples: store.len() as u64,
            sets,
            predicates,
        }
    }

    /// The summary for predicate `p`, if it occurs at this endpoint.
    pub fn predicate(&self, p: TermId) -> Option<&PredicateSummary> {
        self.predicates.get(&p)
    }

    /// Distinct objects of `p` that are not local subjects (0 when `p`
    /// is absent — the home-check query over an absent predicate binds
    /// nothing and returns empty).
    pub fn objects_foreign(&self, p: TermId) -> u64 {
        self.predicates.get(&p).map_or(0, |s| s.objects_foreign)
    }

    /// True if some characteristic set contains `with` but not
    /// `without` — i.e. some subject has a `with` triple and no
    /// `without` triple. This is exactly the answer to Lusail's
    /// uncorrelated set-difference check over subject-role patterns, and
    /// it is exact: every subject belongs to exactly one set.
    pub fn any_signature_with_without(&self, with: TermId, without: TermId) -> bool {
        self.sets.iter().any(|cs| cs.has(with) && !cs.has(without))
    }

    /// Locally answers the ASK probe for a single triple pattern, when
    /// the summaries are conclusive. A `Some` answer is exactly what
    /// `ASK { tp }` would return against the summarized store:
    ///
    /// * empty store ⇒ `false` for every pattern;
    /// * constant predicate absent ⇒ `false`, whatever the subject and
    ///   object positions hold;
    /// * constant predicate present with *distinct* subject and object
    ///   variables ⇒ `true`;
    /// * three distinct variables ⇒ `true` (the store is non-empty).
    ///
    /// Everything else (constants or repeated variables in the subject /
    /// object positions) is `None`: the summaries cannot decide it
    /// exactly, so the caller must probe the wire.
    pub fn ask_pattern(&self, tp: &TriplePattern) -> Option<bool> {
        self.count_pattern(tp).map(|n| n > 0)
    }

    /// Locally answers the COUNT probe for a single triple pattern, when
    /// the summaries are conclusive. A `Some` answer is exactly what
    /// `SELECT (COUNT(*) …) { tp }` would return against the summarized
    /// store (see [`EndpointStats::ask_pattern`] for the decidable
    /// shapes: per-predicate totals for `?s <p> ?o`, the store total for
    /// `?s ?p ?o`, and zero for absent predicates or an empty store).
    pub fn count_pattern(&self, tp: &TriplePattern) -> Option<u64> {
        if self.total_triples == 0 {
            return Some(0);
        }
        if let Some(p) = tp.p.as_const() {
            let Some(summary) = self.predicates.get(&p) else {
                // No triple carries this predicate, so no binding of the
                // remaining positions can match.
                return Some(0);
            };
            return match (tp.s.as_var(), tp.o.as_var()) {
                (Some(s), Some(o)) if s != o => Some(summary.triples),
                _ => None,
            };
        }
        // Variable predicate: only the unconstrained scan is decidable.
        match (tp.s.as_var(), tp.p.as_var(), tp.o.as_var()) {
            (Some(s), Some(p), Some(o)) if s != p && s != o && p != o => Some(self.total_triples),
            _ => None,
        }
    }

    /// Serializes into the `lusail-stats/v1` text format. Fails when a
    /// predicate is not an IRI (never the case for RDF data, whose
    /// predicates are IRIs by definition).
    pub fn to_text(&self, dict: &Dictionary) -> Result<String, String> {
        use std::fmt::Write as _;
        let iri = |id: TermId| -> Result<String, String> {
            match dict.decode(id).as_ref() {
                Term::Iri(iri) => Ok(iri.clone()),
                other => Err(format!("predicate {other} is not an IRI")),
            }
        };
        let mut out = String::new();
        let _ = writeln!(out, "{STATS_FORMAT}");
        let _ = writeln!(out, "total {}", self.total_triples);
        // Sort predicates by IRI so the file is dictionary-independent.
        let mut preds: Vec<(String, PredicateSummary)> = Vec::new();
        for (&p, &summary) in &self.predicates {
            preds.push((iri(p)?, summary));
        }
        preds.sort_by(|a, b| a.0.cmp(&b.0));
        for (iri, s) in preds {
            let _ = writeln!(
                out,
                "pred {iri} {} {} {} {}",
                s.triples, s.subjects, s.objects, s.objects_foreign
            );
        }
        let mut sets: Vec<String> = Vec::new();
        for cs in &self.sets {
            let mut line = format!("set {}", cs.subjects);
            let mut pairs: Vec<(String, u64)> = Vec::new();
            for (&p, &n) in cs.predicates.iter().zip(&cs.triples) {
                pairs.push((iri(p)?, n));
            }
            pairs.sort();
            for (iri, n) in pairs {
                let _ = write!(line, " {iri} {n}");
            }
            sets.push(line);
        }
        sets.sort();
        for line in sets {
            let _ = writeln!(out, "{line}");
        }
        Ok(out)
    }

    /// Parses the `lusail-stats/v1` text format, encoding predicate IRIs
    /// into `dict`.
    pub fn from_text(text: &str, dict: &Dictionary) -> Result<EndpointStats, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(tag) if tag.trim() == STATS_FORMAT => {}
            other => return Err(format!("bad stats header: {other:?}")),
        }
        let mut stats = EndpointStats::default();
        let parse_u64 =
            |s: &str| -> Result<u64, String> { s.parse().map_err(|e| format!("bad count: {e}")) };
        for line in lines {
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            let mut fields = line.split_whitespace();
            match fields.next() {
                Some("total") => {
                    stats.total_triples = parse_u64(fields.next().ok_or("total: missing value")?)?;
                }
                Some("pred") => {
                    let iri = fields.next().ok_or("pred: missing IRI")?;
                    let mut next = || -> Result<u64, String> {
                        parse_u64(fields.next().ok_or("pred: short line")?)
                    };
                    let summary = PredicateSummary {
                        triples: next()?,
                        subjects: next()?,
                        objects: next()?,
                        objects_foreign: next()?,
                    };
                    stats.predicates.insert(dict.encode_iri(iri), summary);
                }
                Some("set") => {
                    let subjects = parse_u64(fields.next().ok_or("set: missing subjects")?)?;
                    let mut paired: Vec<(TermId, u64)> = Vec::new();
                    while let Some(iri) = fields.next() {
                        let n = parse_u64(fields.next().ok_or("set: IRI without count")?)?;
                        paired.push((dict.encode_iri(iri), n));
                    }
                    paired.sort_by_key(|&(p, _)| p);
                    stats.sets.push(CharacteristicSet {
                        predicates: paired.iter().map(|&(p, _)| p).collect(),
                        subjects,
                        triples: paired.iter().map(|&(_, n)| n).collect(),
                    });
                }
                other => return Err(format!("unknown stats line: {other:?}")),
            }
        }
        stats.sets.sort_by(|a, b| a.predicates.cmp(&b.predicates));
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::TripleStore;
    use lusail_rdf::Dictionary;
    use lusail_sparql::ast::PatternTerm;
    use std::sync::Arc;

    fn store_with(triples: &[(&str, &str, &str)]) -> TripleStore {
        let dict = Dictionary::shared();
        let mut st = TripleStore::new(dict);
        for (s, p, o) in triples {
            st.insert_terms(&Term::iri(*s), &Term::iri(*p), &Term::iri(*o));
        }
        st
    }

    fn pattern(s: PatternTerm, p: PatternTerm, o: PatternTerm) -> TriplePattern {
        TriplePattern::new(s, p, o)
    }

    fn var(name: &str) -> PatternTerm {
        PatternTerm::Var(name.to_string())
    }

    #[test]
    fn build_groups_subjects_into_characteristic_sets() {
        let st = store_with(&[
            ("s1", "p", "o1"),
            ("s1", "p", "o2"),
            ("s1", "q", "o1"),
            ("s2", "p", "o1"),
            ("s3", "q", "s1"),
        ]);
        let stats = EndpointStats::build(&st);
        assert_eq!(stats.total_triples, 5);
        // Signatures: {p,q} (s1), {p} (s2), {q} (s3).
        assert_eq!(stats.sets.len(), 3);
        let total_subjects: u64 = stats.sets.iter().map(|cs| cs.subjects).sum();
        assert_eq!(total_subjects, 3);
        let total_from_sets: u64 = stats.sets.iter().flat_map(|cs| cs.triples.iter()).sum();
        assert_eq!(total_from_sets, 5);
        let p = st.dict().lookup(&Term::iri("p")).unwrap();
        let q = st.dict().lookup(&Term::iri("q")).unwrap();
        let ps = stats.predicate(p).unwrap();
        assert_eq!(ps.triples, 3);
        assert_eq!(ps.subjects, 2);
        assert_eq!(ps.objects, 2);
        // o1, o2 are never subjects; both are objects of p.
        assert_eq!(ps.objects_foreign, 2);
        // q's objects are o1 (foreign) and s1 (a local subject).
        assert_eq!(stats.objects_foreign(q), 1);
        // Subjects with p but without q: s2 exists.
        assert!(stats.any_signature_with_without(p, q));
        assert!(stats.any_signature_with_without(q, p));
    }

    #[test]
    fn conclusive_answers_match_wire_semantics() {
        let st = store_with(&[("s1", "p", "o1"), ("s2", "p", "o2"), ("s3", "q", "o3")]);
        let dict = Arc::clone(st.dict());
        let stats = EndpointStats::build(&st);
        let p = PatternTerm::Const(dict.lookup(&Term::iri("p")).unwrap());
        let q = PatternTerm::Const(dict.lookup(&Term::iri("q")).unwrap());
        let absent = PatternTerm::Const(dict.encode(&Term::iri("never")));
        let s1 = PatternTerm::Const(dict.lookup(&Term::iri("s1")).unwrap());

        // Present predicate, distinct variables: exact count.
        assert_eq!(
            stats.count_pattern(&pattern(var("s"), p.clone(), var("o"))),
            Some(2)
        );
        assert_eq!(
            stats.count_pattern(&pattern(var("s"), q, var("o"))),
            Some(1)
        );
        assert_eq!(
            stats.ask_pattern(&pattern(var("s"), p.clone(), var("o"))),
            Some(true)
        );
        // Absent predicate: conclusive false whatever else is bound.
        assert_eq!(
            stats.ask_pattern(&pattern(var("s"), absent.clone(), var("o"))),
            Some(false)
        );
        assert_eq!(
            stats.count_pattern(&pattern(s1.clone(), absent, var("o"))),
            Some(0)
        );
        // Full scan: the store total.
        assert_eq!(
            stats.count_pattern(&pattern(var("s"), var("p"), var("o"))),
            Some(3)
        );
        // Bound subject, repeated variables: inconclusive.
        assert_eq!(stats.count_pattern(&pattern(s1, p.clone(), var("o"))), None);
        assert_eq!(stats.count_pattern(&pattern(var("x"), p, var("x"))), None);
        assert_eq!(
            stats.count_pattern(&pattern(var("x"), var("p"), var("x"))),
            None
        );
    }

    #[test]
    fn empty_store_is_conclusively_empty() {
        let st = TripleStore::new(Dictionary::shared());
        let stats = EndpointStats::build(&st);
        let tp = pattern(var("x"), var("p"), var("x"));
        assert_eq!(stats.ask_pattern(&tp), Some(false));
        assert_eq!(stats.count_pattern(&tp), Some(0));
    }

    #[test]
    fn text_roundtrip_preserves_everything() {
        let st = store_with(&[
            ("s1", "p", "o1"),
            ("s1", "q", "o2"),
            ("s2", "p", "o1"),
            ("s3", "r", "s2"),
        ]);
        let dict = st.dict();
        let stats = EndpointStats::build(&st);
        let text = stats.to_text(dict).unwrap();
        assert!(text.starts_with(STATS_FORMAT));
        let parsed = EndpointStats::from_text(&text, dict).unwrap();
        assert_eq!(parsed.total_triples, stats.total_triples);
        assert_eq!(parsed.sets, stats.sets);
        assert_eq!(parsed.predicates, stats.predicates);
        // And the round trip is a fixed point of serialization.
        assert_eq!(parsed.to_text(dict).unwrap(), text);
    }

    #[test]
    fn from_text_rejects_garbage() {
        let dict = Dictionary::shared();
        assert!(EndpointStats::from_text("", &dict).is_err());
        assert!(EndpointStats::from_text("lusail-stats/v0\n", &dict).is_err());
        assert!(EndpointStats::from_text("lusail-stats/v1\nbogus line\n", &dict).is_err());
        assert!(EndpointStats::from_text("lusail-stats/v1\npred x 1\n", &dict).is_err());
    }
}
