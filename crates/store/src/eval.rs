//! The local SPARQL evaluator backing every endpoint.
//!
//! Evaluation strategy:
//!
//! * **BGP** — index nested-loop join: triple patterns are ordered greedily
//!   by boundness (constants plus already-bound variables) with the
//!   index-estimated cardinality of their constant positions as
//!   tie-breaker (see [`plan_bgp_order`]), then each solution row is
//!   extended by an index range scan. A `LIMIT` on a simple group (no
//!   filters/optionals/unions) is pushed into the scan, which makes `ASK`
//!   and Lusail's `LIMIT 1` check queries cheap.
//! * **UNION** — branches evaluated independently, concatenated, then
//!   joined with the surrounding solutions.
//! * **OPTIONAL** — left join.
//! * **FILTER NOT EXISTS** — anti join on shared variables.
//! * **FILTER** — row predicate via [`crate::expr`].

use crate::backend::StorageBackend;
use crate::expr::eval_filter;
use lusail_rdf::TermId;
use lusail_sparql::ast::{GroupPattern, PatternTerm, Query, QueryForm, TriplePattern};
use lusail_sparql::solution::{Row, SolutionSet};

/// Evaluates a query against a store, producing its solution set.
///
/// * For `SELECT`, applies projection, `DISTINCT`, and `LIMIT`.
/// * For `ASK`, returns a one-row/zero-row set over no variables.
/// * For `SELECT (COUNT(*) AS ?alias)`, returns one row binding the alias
///   to an integer literal.
pub fn evaluate(store: &dyn StorageBackend, q: &Query) -> SolutionSet {
    match &q.form {
        QueryForm::Ask => {
            let sols = eval_group(store, &q.pattern, Some(1));
            let mut out = SolutionSet::empty(Vec::new());
            if !sols.is_empty() {
                out.rows.push(Vec::new());
            }
            out
        }
        QueryForm::CountStar(alias) => {
            let n = eval_group(store, &q.pattern, None).len() as i64;
            let id = store.dict().encode(&lusail_rdf::Term::int(n));
            SolutionSet {
                vars: vec![alias.clone()],
                rows: vec![vec![Some(id)]],
            }
        }
        QueryForm::Select => {
            // LIMIT can only be pushed into matching when there is no
            // DISTINCT (which collapses rows afterwards), no ORDER BY, and
            // no aggregation (both must see every row before truncation).
            let push_limit = if q.distinct || !q.order_by.is_empty() || !q.aggregates.is_empty() {
                None
            } else {
                q.limit
            };
            let sols = eval_group(store, &q.pattern, push_limit);
            apply_modifiers(sols, q, store.dict())
        }
    }
}

/// Applies a query's solution modifiers to already-computed pattern
/// solutions, in SPARQL's order: aggregation (GROUP BY + HAVING), ORDER
/// BY (over the *full* schema — sort keys need not be projected),
/// projection, DISTINCT, LIMIT. Shared by the local evaluator, the Lusail
/// engine, and the baseline engines.
pub fn apply_modifiers(
    mut sols: SolutionSet,
    q: &Query,
    dict: &lusail_rdf::Dictionary,
) -> SolutionSet {
    if !q.aggregates.is_empty() {
        sols = apply_group_by(&sols, &q.group_by, &q.aggregates, dict);
        apply_having(&mut sols, &q.having, dict);
        apply_order(&mut sols, &q.order_by, dict);
    } else {
        // ORDER BY before projection: its keys may be non-projected vars.
        apply_order(&mut sols, &q.order_by, dict);
        // Always project onto the query's output schema — `SELECT *` must
        // expose every pattern variable as a column even when the BGP
        // short-circuited to an empty result.
        let projection = q.output_vars();
        if !projection.is_empty() {
            sols = sols.project(&projection);
        }
    }
    if q.distinct {
        sols.dedup();
    }
    if let Some(limit) = q.limit {
        sols.truncate(limit);
    }
    sols
}

/// Groups solutions by the `GROUP BY` keys and computes the aggregate
/// projection (`COUNT`/`SUM`/`MIN`/`MAX`/`AVG`). With no keys, everything
/// aggregates into a single row (SPARQL's implicit group). `COUNT` counts
/// bound values of its variable (or all rows for `*`); `SUM`/`AVG` skip
/// non-numeric bindings; `MIN`/`MAX` use numeric order when both sides are
/// numeric and term order otherwise.
pub fn apply_group_by(
    sols: &SolutionSet,
    group_by: &[String],
    aggregates: &[lusail_sparql::ast::Aggregate],
    dict: &lusail_rdf::Dictionary,
) -> SolutionSet {
    use lusail_rdf::FxHashMap;
    use lusail_sparql::ast::AggFunc;

    let key_cols: Vec<Option<usize>> = group_by.iter().map(|v| sols.col(v)).collect();
    let agg_cols: Vec<Option<usize>> = aggregates
        .iter()
        .map(|a| a.var.as_deref().and_then(|v| sols.col(v)))
        .collect();

    // Group rows by key; preserve first-seen group order.
    let mut groups: FxHashMap<Vec<Option<TermId>>, Vec<usize>> = FxHashMap::default();
    let mut order: Vec<Vec<Option<TermId>>> = Vec::new();
    if sols.rows.is_empty() && group_by.is_empty() {
        // SPARQL: aggregating an empty solution sequence with no GROUP BY
        // yields one row (COUNT = 0).
        groups.insert(Vec::new(), Vec::new());
        order.push(Vec::new());
    }
    for (i, row) in sols.rows.iter().enumerate() {
        let key: Vec<Option<TermId>> = key_cols.iter().map(|c| c.and_then(|c| row[c])).collect();
        groups
            .entry(key.clone())
            .or_insert_with(|| {
                order.push(key.clone());
                Vec::new()
            })
            .push(i);
    }

    let mut out_vars: Vec<String> = group_by.to_vec();
    out_vars.extend(aggregates.iter().map(|a| a.alias.clone()));
    let mut out = SolutionSet::empty(out_vars);

    for key in order {
        let members = &groups[&key];
        let mut row: Row = key.clone();
        for (ai, agg) in aggregates.iter().enumerate() {
            let value: Option<TermId> = match agg.func {
                AggFunc::Count => {
                    let n = match agg_cols[ai] {
                        // COUNT(?v): bound values only, DISTINCT-aware.
                        Some(c) => {
                            if agg.distinct {
                                let set: lusail_rdf::FxHashSet<TermId> =
                                    members.iter().filter_map(|&i| sols.rows[i][c]).collect();
                                set.len() as i64
                            } else {
                                members
                                    .iter()
                                    .filter(|&&i| sols.rows[i][c].is_some())
                                    .count() as i64
                            }
                        }
                        // COUNT(*) — or COUNT of a var absent from the
                        // schema, which counts nothing.
                        None if agg.var.is_none() => members.len() as i64,
                        None => 0,
                    };
                    Some(dict.encode(&lusail_rdf::Term::int(n)))
                }
                AggFunc::Sum | AggFunc::Avg => {
                    let nums: Vec<f64> = agg_cols[ai]
                        .map(|c| {
                            members
                                .iter()
                                .filter_map(|&i| sols.rows[i][c])
                                .filter_map(|id| dict.decode(id).as_f64())
                                .collect()
                        })
                        .unwrap_or_default();
                    if agg.func == AggFunc::Avg && nums.is_empty() {
                        None
                    } else {
                        let total: f64 = nums.iter().sum();
                        let value = if agg.func == AggFunc::Avg {
                            total / nums.len() as f64
                        } else {
                            total
                        };
                        // Integral results stay integers for readability.
                        let term = if value.fract() == 0.0 && value.abs() < 1e15 {
                            lusail_rdf::Term::int(value as i64)
                        } else {
                            lusail_rdf::Term::Literal {
                                lexical: format!("{value}"),
                                lang: None,
                                datatype: Some(lusail_rdf::vocab::XSD_DECIMAL.to_string()),
                            }
                        };
                        Some(dict.encode(&term))
                    }
                }
                AggFunc::Min | AggFunc::Max => {
                    let mut best: Option<TermId> = None;
                    if let Some(c) = agg_cols[ai] {
                        for &i in members {
                            let Some(id) = sols.rows[i][c] else { continue };
                            best = Some(match best {
                                None => id,
                                Some(cur) => {
                                    let ord = compare_cells(Some(id), Some(cur), dict);
                                    let take = if agg.func == AggFunc::Min {
                                        ord == std::cmp::Ordering::Less
                                    } else {
                                        ord == std::cmp::Ordering::Greater
                                    };
                                    if take {
                                        id
                                    } else {
                                        cur
                                    }
                                }
                            });
                        }
                    }
                    best
                }
            };
            row.push(value);
        }
        out.rows.push(row);
    }
    out
}

/// Joins a group's nested clauses into already-computed solutions:
/// `UNION` blocks (branch concatenation then join), `OPTIONAL` groups
/// (left join with correlated filters lifted into the join condition),
/// and `FILTER NOT EXISTS` groups (anti join, likewise correlated).
/// `eval_subgroup` supplies the evaluation of one nested group — the
/// local evaluator recurses into the store, the federated engines recurse
/// into their own pipelines.
pub fn join_nested_groups(
    mut sols: SolutionSet,
    group: &lusail_sparql::ast::GroupPattern,
    dict: &lusail_rdf::Dictionary,
    mut eval_subgroup: impl FnMut(&lusail_sparql::ast::GroupPattern) -> SolutionSet,
) -> SolutionSet {
    for branches in &group.unions {
        let mut union_sols: Option<SolutionSet> = None;
        for b in branches {
            let bs = eval_subgroup(b);
            match &mut union_sols {
                None => union_sols = Some(bs),
                Some(u) => u.append(bs),
            }
        }
        if let Some(u) = union_sols {
            sols = sols.hash_join(&u);
        }
    }
    for opt in &group.optionals {
        let (inner, correlated) = opt.split_correlated_filters();
        let os = eval_subgroup(&inner);
        sols = left_join_filtered(&sols, &os, &correlated, dict);
    }
    for ne in &group.not_exists {
        let (inner, correlated) = ne.split_correlated_filters();
        let ns = eval_subgroup(&inner);
        sols = anti_join_filtered(&sols, &ns, &correlated, dict);
    }
    sols
}

/// Drops rows failing any of the filters (the FILTER retain loop shared
/// by every engine).
pub fn retain_filtered(
    sols: &mut SolutionSet,
    filters: &[lusail_sparql::ast::Expression],
    dict: &lusail_rdf::Dictionary,
) {
    if filters.is_empty() {
        return;
    }
    let vars = sols.vars.clone();
    sols.rows.retain(|row| {
        let ctx: (&[String], &[Option<TermId>]) = (&vars, row);
        filters.iter().all(|f| eval_filter(f, &ctx, dict))
    });
}

/// SPARQL `LeftJoin(P1, P2, F)`: a left row extends with a compatible
/// right row only when the *merged* row satisfies every filter; left rows
/// with no surviving partner are kept with the right-hand columns
/// unbound. Needed for filters inside `OPTIONAL` that reference outer
/// variables (correlated filters); with no filters this is
/// [`SolutionSet::left_join`].
pub fn left_join_filtered(
    left: &SolutionSet,
    right: &SolutionSet,
    filters: &[lusail_sparql::ast::Expression],
    dict: &lusail_rdf::Dictionary,
) -> SolutionSet {
    if filters.is_empty() {
        return left.left_join(right);
    }
    let out_vars: Vec<String> = left
        .vars
        .iter()
        .cloned()
        .chain(right.vars.iter().filter(|v| left.col(v).is_none()).cloned())
        .collect();
    let shared: Vec<(usize, usize)> = left
        .vars
        .iter()
        .enumerate()
        .filter_map(|(i, v)| right.col(v).map(|j| (i, j)))
        .collect();
    let mut out = SolutionSet::empty(out_vars);
    for lrow in &left.rows {
        let mut matched = false;
        for rrow in &right.rows {
            let compatible = shared.iter().all(|&(i, j)| match (lrow[i], rrow[j]) {
                (Some(a), Some(b)) => a == b,
                _ => true,
            });
            if !compatible {
                continue;
            }
            let merged: Row = out
                .vars
                .iter()
                .map(|v| {
                    let a = left.col(v).and_then(|c| lrow[c]);
                    let b = right.col(v).and_then(|c| rrow[c]);
                    a.or(b)
                })
                .collect();
            let ctx: (&[String], &[Option<TermId>]) = (&out.vars, &merged);
            if filters.iter().all(|f| eval_filter(f, &ctx, dict)) {
                matched = true;
                out.rows.push(merged);
            }
        }
        if !matched {
            let row: Row = out
                .vars
                .iter()
                .map(|v| left.col(v).and_then(|c| lrow[c]))
                .collect();
            out.rows.push(row);
        }
    }
    out
}

/// `FILTER NOT EXISTS` with correlated filters: a left row is dropped
/// when some compatible right row makes the merged row satisfy every
/// filter. With no filters this is [`SolutionSet::anti_join`].
pub fn anti_join_filtered(
    left: &SolutionSet,
    right: &SolutionSet,
    filters: &[lusail_sparql::ast::Expression],
    dict: &lusail_rdf::Dictionary,
) -> SolutionSet {
    if filters.is_empty() {
        return left.anti_join(right);
    }
    let merged_vars: Vec<String> = left
        .vars
        .iter()
        .cloned()
        .chain(right.vars.iter().filter(|v| left.col(v).is_none()).cloned())
        .collect();
    let shared: Vec<(usize, usize)> = left
        .vars
        .iter()
        .enumerate()
        .filter_map(|(i, v)| right.col(v).map(|j| (i, j)))
        .collect();
    let mut out = SolutionSet::empty(left.vars.clone());
    for lrow in &left.rows {
        let exists = right.rows.iter().any(|rrow| {
            let compatible = shared.iter().all(|&(i, j)| match (lrow[i], rrow[j]) {
                (Some(a), Some(b)) => a == b,
                _ => true,
            });
            if !compatible {
                return false;
            }
            let merged: Row = merged_vars
                .iter()
                .map(|v| {
                    let a = left.col(v).and_then(|c| lrow[c]);
                    let b = right.col(v).and_then(|c| rrow[c]);
                    a.or(b)
                })
                .collect();
            let ctx: (&[String], &[Option<TermId>]) = (&merged_vars, &merged);
            filters.iter().all(|f| eval_filter(f, &ctx, dict))
        });
        if !exists {
            out.rows.push(lrow.clone());
        }
    }
    out
}

/// Filters grouped rows by `HAVING` constraints (aggregate aliases are in
/// scope as ordinary columns at this point).
pub fn apply_having(
    sols: &mut SolutionSet,
    having: &[lusail_sparql::ast::Expression],
    dict: &lusail_rdf::Dictionary,
) {
    if having.is_empty() {
        return;
    }
    let vars = sols.vars.clone();
    sols.rows.retain(|row| {
        let ctx: (&[String], &[Option<TermId>]) = (&vars, row);
        having.iter().all(|h| eval_filter(h, &ctx, dict))
    });
}

/// Sorts solutions by `ORDER BY` keys: unbound first, then numeric order
/// when both values are numeric, then full term order.
pub fn apply_order(
    sols: &mut SolutionSet,
    keys: &[lusail_sparql::ast::OrderKey],
    dict: &lusail_rdf::Dictionary,
) {
    if keys.is_empty() {
        return;
    }
    let cols: Vec<(Option<usize>, bool)> = keys
        .iter()
        .map(|k| (sols.col(&k.var), k.descending))
        .collect();
    sols.rows.sort_by(|a, b| {
        for &(col, descending) in &cols {
            let Some(c) = col else { continue };
            let ord = compare_cells(a[c], b[c], dict);
            if ord != std::cmp::Ordering::Equal {
                return if descending { ord.reverse() } else { ord };
            }
        }
        std::cmp::Ordering::Equal
    });
}

fn compare_cells(
    a: Option<TermId>,
    b: Option<TermId>,
    dict: &lusail_rdf::Dictionary,
) -> std::cmp::Ordering {
    match (a, b) {
        (None, None) => std::cmp::Ordering::Equal,
        (None, Some(_)) => std::cmp::Ordering::Less,
        (Some(_), None) => std::cmp::Ordering::Greater,
        (Some(x), Some(y)) => {
            if x == y {
                return std::cmp::Ordering::Equal;
            }
            let tx = dict.decode(x);
            let ty = dict.decode(y);
            match (tx.as_f64(), ty.as_f64()) {
                (Some(nx), Some(ny)) => nx.total_cmp(&ny),
                _ => tx.cmp(&ty),
            }
        }
    }
}

/// Evaluates an `ASK`-style existence check for the query's pattern.
pub fn ask(store: &dyn StorageBackend, q: &Query) -> bool {
    !eval_group(store, &q.pattern, Some(1)).is_empty()
}

/// Counts the solutions of the query's pattern.
pub fn count(store: &dyn StorageBackend, q: &Query) -> u64 {
    eval_group(store, &q.pattern, None).len() as u64
}

/// Evaluates a group pattern. `limit` is an upper bound on the number of
/// rows the caller needs; it is only *pushed into* the scan when the group
/// is simple enough that early rows are final rows.
pub fn eval_group(
    store: &dyn StorageBackend,
    g: &GroupPattern,
    limit: Option<usize>,
) -> SolutionSet {
    let simple = g.filters.is_empty()
        && g.optionals.is_empty()
        && g.unions.is_empty()
        && g.not_exists.is_empty();
    let scan_limit = if simple { limit } else { None };

    // Seed solutions from the VALUES block, if any.
    let mut sols = match &g.values {
        Some(v) => SolutionSet {
            vars: v.vars.clone(),
            rows: v.rows.clone(),
        },
        None => SolutionSet {
            vars: Vec::new(),
            rows: vec![Vec::new()],
        },
    };

    sols = eval_bgp(store, &g.triples, sols, scan_limit);
    sols = join_nested_groups(sols, g, store.dict(), |sub| eval_group(store, sub, None));
    retain_filtered(&mut sols, &g.filters, store.dict());

    if let Some(l) = limit {
        sols.truncate(l);
    }
    sols
}

/// Extends `sols` by the conjunctive triple patterns using the
/// selectivity-greedy order of [`plan_bgp_order`] and index nested-loop
/// joins. Stops early once `limit` rows exist after the final pattern.
/// When the store's reorder flag is off (see
/// [`StorageBackend::set_reorder`]), patterns run in textual order — the
/// unoptimized baseline the bench harness measures against.
fn eval_bgp(
    store: &dyn StorageBackend,
    triples: &[TriplePattern],
    mut sols: SolutionSet,
    limit: Option<usize>,
) -> SolutionSet {
    let order: Vec<usize> = if store.reorder_enabled() {
        plan_bgp_order(store, triples, &sols.vars)
    } else {
        (0..triples.len()).collect()
    };
    for (k, &i) in order.iter().enumerate() {
        let is_last = k + 1 == order.len();
        let row_cap = if is_last { limit } else { None };
        sols = extend(store, &sols, &triples[i], row_cap);
        if sols.is_empty() {
            return sols; // Short-circuit: the BGP has no solutions.
        }
    }
    sols
}

/// Plans the evaluation order of a BGP's patterns: greedily pick, at each
/// step, the pattern with the fewest still-free positions (constants and
/// already-bound variables count as bound), breaking ties by the
/// index-estimated cardinality of its constant positions and then by
/// original position. `bound` seeds the bound-variable set (e.g. from a
/// VALUES block). The returned indices are into `triples`.
///
/// Boundness depends only on which variables appear earlier in the chosen
/// order — never on row contents — so the plan can be computed once up
/// front, and pinned in tests.
pub fn plan_bgp_order(
    store: &dyn StorageBackend,
    triples: &[TriplePattern],
    bound: &[String],
) -> Vec<usize> {
    let mut bound: Vec<String> = bound.to_vec();
    let mut remaining: Vec<usize> = (0..triples.len()).collect();
    let mut order = Vec::with_capacity(triples.len());
    while !remaining.is_empty() {
        let mut best_pos = 0usize;
        let mut best_key = (usize::MAX, u64::MAX);
        for (pos, &i) in remaining.iter().enumerate() {
            let tp = &triples[i];
            let is_bound = |t: &PatternTerm| match t {
                PatternTerm::Const(_) => true,
                PatternTerm::Var(v) => bound.iter().any(|b| b == v),
            };
            let free = [&tp.s, &tp.p, &tp.o]
                .into_iter()
                .filter(|t| !is_bound(t))
                .count();
            // Estimate with constants only (bound vars vary per row).
            let est = store.estimate(tp.s.as_const(), tp.p.as_const(), tp.o.as_const());
            let key = (free, est);
            if key < best_key {
                best_key = key;
                best_pos = pos;
            }
        }
        let i = remaining.remove(best_pos);
        for v in triples[i].vars() {
            if !bound.iter().any(|b| b == v) {
                bound.push(v.to_string());
            }
        }
        order.push(i);
    }
    order
}

/// Joins the current solutions with one triple pattern via index lookups.
fn extend(
    store: &dyn StorageBackend,
    sols: &SolutionSet,
    tp: &TriplePattern,
    limit: Option<usize>,
) -> SolutionSet {
    // Output schema: existing vars plus any new ones from this pattern.
    let mut vars = sols.vars.clone();
    for v in tp.vars() {
        if !vars.iter().any(|x| x == v) {
            vars.push(v.to_string());
        }
    }
    let mut out = SolutionSet::empty(vars);

    // Precompute column resolution for the pattern positions.
    let resolve = |t: &PatternTerm, row: &Row| -> Resolved {
        match t {
            PatternTerm::Const(id) => Resolved::Bound(*id),
            PatternTerm::Var(v) => match sols.col(v).and_then(|c| row[c]) {
                Some(id) => Resolved::Bound(id),
                None => Resolved::Free(out_col(&out.vars, v)),
            },
        }
    };

    'rows: for row in &sols.rows {
        let rs = resolve(&tp.s, row);
        let rp = resolve(&tp.p, row);
        let ro = resolve(&tp.o, row);
        let (qs, qp, qo) = (rs.bound(), rp.bound(), ro.bound());
        let done = !store.scan(qs, qp, qo, |t| {
            // Consistency for repeated free variables within the pattern
            // (e.g. `?x ?p ?x`): positions sharing a column must agree.
            let mut new_row: Row = vec![None; out.vars.len()];
            for (i, val) in row.iter().enumerate() {
                new_row[i] = *val;
            }
            for (r, actual) in [(&rs, t.s), (&rp, t.p), (&ro, t.o)] {
                if let Resolved::Free(c) = r {
                    match new_row[*c] {
                        None => new_row[*c] = Some(actual),
                        Some(prev) if prev == actual => {}
                        Some(_) => return true, // inconsistent; skip match
                    }
                }
            }
            out.rows.push(new_row);
            match limit {
                Some(l) => out.rows.len() < l,
                None => true,
            }
        });
        if done {
            break 'rows;
        }
    }
    out
}

fn out_col(vars: &[String], v: &str) -> usize {
    vars.iter().position(|x| x == v).expect("var in schema")
}

#[derive(Clone, Copy)]
enum Resolved {
    Bound(TermId),
    Free(usize),
}

impl Resolved {
    fn bound(&self) -> Option<TermId> {
        match self {
            Resolved::Bound(id) => Some(*id),
            Resolved::Free(_) => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::store::TripleStore;
    use lusail_rdf::{Dictionary, Term};
    use lusail_sparql::parse_query;

    /// A small two-department graph for evaluator tests.
    fn fixture() -> TripleStore {
        let dict = Dictionary::shared();
        let mut st = TripleStore::new(dict);
        let data = [
            ("alice", "type", "Student"),
            ("bob", "type", "Student"),
            ("carol", "type", "Professor"),
            ("alice", "advisor", "carol"),
            ("bob", "advisor", "carol"),
            ("alice", "takesCourse", "db"),
            ("bob", "takesCourse", "os"),
            ("carol", "teacherOf", "db"),
            ("db", "type", "Course"),
            ("os", "type", "Course"),
        ];
        for (s, p, o) in data {
            st.insert_terms(
                &Term::iri(format!("http://u/{s}")),
                &Term::iri(format!("http://u/{p}")),
                &Term::iri(format!("http://u/{o}")),
            );
        }
        // Names as literals.
        st.insert_terms(
            &Term::iri("http://u/alice"),
            &Term::iri("http://u/name"),
            &Term::lit("Alice"),
        );
        st
    }

    fn run(st: &TripleStore, q: &str) -> SolutionSet {
        let query = parse_query(q, st.dict()).unwrap();
        evaluate(st, &query)
    }

    #[test]
    fn single_pattern() {
        let st = fixture();
        let s = run(
            &st,
            "SELECT ?x WHERE { ?x <http://u/type> <http://u/Student> }",
        );
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn triangle_join() {
        let st = fixture();
        // Students taking a course taught by their advisor: only alice (db).
        let s = run(
            &st,
            "SELECT ?x ?c WHERE { ?x <http://u/advisor> ?p . ?x <http://u/takesCourse> ?c . ?p <http://u/teacherOf> ?c }",
        );
        assert_eq!(s.len(), 1);
        let dict = st.dict();
        let x = s.get(0, "x").unwrap();
        assert_eq!(*dict.decode(x), Term::iri("http://u/alice"));
    }

    #[test]
    fn optional_keeps_unmatched() {
        let st = fixture();
        let s = run(
            &st,
            "SELECT ?x ?n WHERE { ?x <http://u/type> <http://u/Student> . OPTIONAL { ?x <http://u/name> ?n } }",
        );
        assert_eq!(s.len(), 2);
        let bound: Vec<bool> = (0..2).map(|i| s.get(i, "n").is_some()).collect();
        assert_eq!(bound.iter().filter(|b| **b).count(), 1);
    }

    #[test]
    fn union_concatenates() {
        let st = fixture();
        let s = run(
            &st,
            "SELECT ?x WHERE { { ?x <http://u/type> <http://u/Student> } UNION { ?x <http://u/type> <http://u/Professor> } }",
        );
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn not_exists_excludes() {
        let st = fixture();
        // Students with no takesCourse triple: none (both take courses).
        let s = run(
            &st,
            "SELECT ?x WHERE { ?x <http://u/type> <http://u/Student> . FILTER NOT EXISTS { ?x <http://u/takesCourse> ?c } }",
        );
        assert_eq!(s.len(), 0);
        // Professors with no advisor triple pointing at them... check the
        // inverse direction: professors who take no course = carol.
        let s = run(
            &st,
            "SELECT ?x WHERE { ?x <http://u/type> <http://u/Professor> . FILTER NOT EXISTS { ?x <http://u/takesCourse> ?c } }",
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn filter_on_literal() {
        let st = fixture();
        let s = run(
            &st,
            "SELECT ?x WHERE { ?x <http://u/name> ?n . FILTER (?n = \"Alice\") }",
        );
        assert_eq!(s.len(), 1);
        let s = run(
            &st,
            "SELECT ?x WHERE { ?x <http://u/name> ?n . FILTER (?n = \"Nobody\") }",
        );
        assert_eq!(s.len(), 0);
    }

    #[test]
    fn values_restricts() {
        let st = fixture();
        let s = run(
            &st,
            "SELECT ?x ?c WHERE { VALUES ?x { <http://u/alice> } ?x <http://u/takesCourse> ?c }",
        );
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn distinct_and_limit() {
        let st = fixture();
        let s = run(&st, "SELECT DISTINCT ?p WHERE { ?x <http://u/advisor> ?p }");
        assert_eq!(s.len(), 1);
        let s = run(&st, "SELECT ?x WHERE { ?x ?p ?o } LIMIT 3");
        assert_eq!(s.len(), 3);
    }

    #[test]
    fn ask_and_count() {
        let st = fixture();
        let q = parse_query("ASK { ?x <http://u/type> <http://u/Student> }", st.dict()).unwrap();
        assert!(ask(&st, &q));
        let q = parse_query("ASK { ?x <http://u/type> <http://u/Robot> }", st.dict()).unwrap();
        assert!(!ask(&st, &q));
        let q = parse_query(
            "SELECT (COUNT(*) AS ?c) WHERE { ?x <http://u/takesCourse> ?c2 }",
            st.dict(),
        )
        .unwrap();
        assert_eq!(count(&st, &q), 2);
    }

    #[test]
    fn count_query_returns_literal_row() {
        let st = fixture();
        let s = run(
            &st,
            "SELECT (COUNT(*) AS ?n) WHERE { ?x <http://u/advisor> ?p }",
        );
        assert_eq!(s.vars, ["n"]);
        let id = s.rows[0][0].unwrap();
        assert_eq!(*st.dict().decode(id), Term::int(2));
    }

    #[test]
    fn repeated_variable_in_pattern() {
        let dict = Dictionary::shared();
        let mut st = TripleStore::new(dict);
        st.insert_terms(
            &Term::iri("http://u/x"),
            &Term::iri("http://u/rel"),
            &Term::iri("http://u/x"),
        );
        st.insert_terms(
            &Term::iri("http://u/y"),
            &Term::iri("http://u/rel"),
            &Term::iri("http://u/z"),
        );
        let s = run(&st, "SELECT ?a WHERE { ?a <http://u/rel> ?a }");
        assert_eq!(s.len(), 1);
    }

    #[test]
    fn cartesian_product_of_disconnected_patterns() {
        let st = fixture();
        let s = run(
            &st,
            "SELECT ?a ?b WHERE { ?a <http://u/type> <http://u/Student> . ?b <http://u/type> <http://u/Course> }",
        );
        assert_eq!(s.len(), 4);
    }

    #[test]
    fn empty_group_yields_one_empty_row() {
        let st = fixture();
        let s = run(&st, "SELECT * WHERE { }");
        assert_eq!(s.len(), 1);
        assert!(s.vars.is_empty());
    }

    #[test]
    fn projection_of_missing_var_is_unbound() {
        let st = fixture();
        let s = run(&st, "SELECT ?ghost WHERE { ?x <http://u/advisor> ?p }");
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(0, "ghost"), None);
    }

    #[test]
    fn planner_starts_with_the_most_selective_pattern() {
        let st = fixture();
        let q = parse_query(
            "SELECT * WHERE { ?x <http://u/type> ?t . ?x <http://u/teacherOf> ?c . ?x <http://u/advisor> ?p }",
            st.dict(),
        )
        .unwrap();
        // teacherOf has 1 triple, advisor 2, type 5: the planner must lead
        // with teacherOf, then stay connected through ?x.
        let order = plan_bgp_order(&st, &q.pattern.triples, &[]);
        assert_eq!(order[0], 1);
        assert_eq!(order.len(), 3);
    }

    #[test]
    fn planner_honors_seed_bindings_from_values() {
        let st = fixture();
        let q = parse_query(
            "SELECT * WHERE { ?x <http://u/type> ?t . ?x <http://u/name> ?n }",
            st.dict(),
        )
        .unwrap();
        // With ?t pre-bound (e.g. by VALUES), pattern 0 has one free
        // position against pattern 1's two, despite name (1 triple) being
        // rarer than type (5).
        let order = plan_bgp_order(&st, &q.pattern.triples, &["t".to_string()]);
        assert_eq!(order, vec![0, 1]);
        // Unseeded, both have two free positions and name's lower
        // cardinality wins.
        let order = plan_bgp_order(&st, &q.pattern.triples, &[]);
        assert_eq!(order, vec![1, 0]);
    }

    #[test]
    fn reorder_off_matches_reorder_on_results() {
        let st = fixture();
        let q = "SELECT ?x ?c WHERE { ?x <http://u/advisor> ?p . ?x <http://u/takesCourse> ?c . ?p <http://u/teacherOf> ?c }";
        let ordered = run(&st, q).canonicalize();
        st.set_reorder(false);
        let textual = run(&st, q).canonicalize();
        st.set_reorder(true);
        assert_eq!(ordered, textual);
    }
}

#[cfg(test)]
mod order_tests {
    use super::*;
    use crate::store::TripleStore;
    use lusail_rdf::{Dictionary, Term};
    use lusail_sparql::parse_query;

    fn fixture() -> TripleStore {
        let dict = Dictionary::shared();
        let mut st = TripleStore::new(dict);
        for (name, age) in [("carol", 41), ("alice", 29), ("bob", 35)] {
            st.insert_terms(
                &Term::iri(format!("http://u/{name}")),
                &Term::iri("http://u/age"),
                &Term::int(age),
            );
            st.insert_terms(
                &Term::iri(format!("http://u/{name}")),
                &Term::iri("http://u/name"),
                &Term::lit(name),
            );
        }
        st
    }

    fn names_in_order(st: &TripleStore, q: &str) -> Vec<String> {
        let query = parse_query(q, st.dict()).unwrap();
        let sols = evaluate(st, &query);
        (0..sols.len())
            .map(|i| {
                st.dict()
                    .decode(sols.get(i, "n").unwrap())
                    .lexical()
                    .to_string()
            })
            .collect()
    }

    #[test]
    fn order_by_string_ascending() {
        let st = fixture();
        let names = names_in_order(&st, "SELECT ?n WHERE { ?x <http://u/name> ?n } ORDER BY ?n");
        assert_eq!(names, ["alice", "bob", "carol"]);
    }

    #[test]
    fn order_by_numeric_descending() {
        let st = fixture();
        let names = names_in_order(
            &st,
            "SELECT ?n ?a WHERE { ?x <http://u/name> ?n . ?x <http://u/age> ?a } ORDER BY DESC(?a)",
        );
        assert_eq!(names, ["carol", "bob", "alice"]);
    }

    #[test]
    fn order_by_with_limit_takes_smallest() {
        let st = fixture();
        let names = names_in_order(
            &st,
            "SELECT ?n ?a WHERE { ?x <http://u/name> ?n . ?x <http://u/age> ?a } ORDER BY ?a LIMIT 1",
        );
        assert_eq!(names, ["alice"]);
    }

    #[test]
    fn order_by_roundtrips_through_writer() {
        let st = fixture();
        let q = parse_query(
            "SELECT ?n WHERE { ?x <http://u/name> ?n } ORDER BY DESC(?n) ?x LIMIT 2",
            st.dict(),
        )
        .unwrap();
        let text = lusail_sparql::write_query(&q, st.dict());
        let q2 = parse_query(&text, st.dict()).unwrap();
        assert_eq!(q, q2);
    }
}
