//! The compressed sorted-column backend: CSR-style SPO columns plus
//! POS/OSP permutation indexes, all bit-packed.
//!
//! [`ColumnStore`] is built once from a populated [`TripleStore`] (or a
//! raw triple list) and is immutable afterwards. Layout, in the spirit of
//! HDT's bitmap-triples representation:
//!
//! * **SPO as CSR**: a sorted, deduplicated column of distinct subjects
//!   plus an offsets column delimiting each subject's run of `(p, o)`
//!   rows; the per-row predicate and object columns are sorted within
//!   each subject run. A triple's *row index* is its rank in this order.
//! * **POS / OSP as permutations**: row indexes sorted by `(p, o, s)` and
//!   `(o, s, p)` respectively, each fronted by a packed key directory
//!   (distinct predicates / objects with run offsets). The directory run
//!   lengths *are* the per-predicate histogram — predicate statistics
//!   fall out of construction for free.
//!
//! Every column lives in a [`PackedVec`]: fixed-width bit-packed `u32`
//! values, width chosen per column as the bit-length of its maximum. At
//! LUBM scale this lands near 11–12 bytes per triple, versus ~60+ for the
//! three-B-tree layout.
//!
//! All eight scan paths binary-search to the exact run and emit triples
//! in the same index order as the BTree backend (SPO for subject-led,
//! `(p,o,s)` for predicate-led, `(o,s,p)` for object-led), so the two
//! backends are observationally identical — `rows_scanned` included.
//! Estimates come from run boundaries and are therefore **exact** for
//! every pattern shape, which is where the columnar backend feeds the
//! join orderer better information than the BTree backend's capped walks.

use crate::backend::{BackendKind, StorageBackend};
use crate::store::{PredicateStats, TripleStore};
use lusail_rdf::{Dictionary, FxHashSet, TermId, Triple};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

/// A fixed-width bit-packed vector of `u32` values. The width is the
/// bit-length of the largest stored value (minimum 1), so a column of
/// small ids costs a fraction of a `Vec<u32>`.
pub struct PackedVec {
    words: Vec<u64>,
    bits: u32,
    len: usize,
}

impl PackedVec {
    /// Packs a slice of values at the minimal fixed width.
    pub fn build(values: &[u32]) -> PackedVec {
        let max = values.iter().copied().max().unwrap_or(0);
        let bits = (32 - max.leading_zeros()).max(1);
        let total_bits = values.len() as u64 * u64::from(bits);
        let words = vec![0u64; total_bits.div_ceil(64) as usize];
        let mut pv = PackedVec {
            words,
            bits,
            len: values.len(),
        };
        for (i, &v) in values.iter().enumerate() {
            pv.set(i, v);
        }
        pv
    }

    fn set(&mut self, i: usize, v: u32) {
        let off = i as u64 * u64::from(self.bits);
        let (w, sh) = ((off / 64) as usize, (off % 64) as u32);
        self.words[w] |= u64::from(v) << sh;
        if sh + self.bits > 64 {
            self.words[w + 1] |= u64::from(v) >> (64 - sh);
        }
    }

    /// The value at index `i`.
    pub fn get(&self, i: usize) -> u32 {
        debug_assert!(i < self.len);
        let off = i as u64 * u64::from(self.bits);
        let (w, sh) = ((off / 64) as usize, (off % 64) as u32);
        let mut v = self.words[w] >> sh;
        if sh + self.bits > 64 {
            v |= self.words[w + 1] << (64 - sh);
        }
        (v & ((1u64 << self.bits) - 1)) as u32
    }

    /// Number of packed values.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no values are packed.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Bits per value.
    pub fn bits(&self) -> u32 {
        self.bits
    }

    /// Heap bytes held by the word buffer.
    pub fn heap_bytes(&self) -> u64 {
        self.words.len() as u64 * 8
    }
}

/// Binary search: the first index in `[lo, hi)` where `pred` is false
/// (i.e. `pred` must be monotone true-then-false over the range).
fn partition_point(lo: usize, hi: usize, mut pred: impl FnMut(usize) -> bool) -> usize {
    let (mut lo, mut hi) = (lo, hi);
    while lo < hi {
        let mid = lo + (hi - lo) / 2;
        if pred(mid) {
            lo = mid + 1;
        } else {
            hi = mid;
        }
    }
    lo
}

/// The immutable bit-packed sorted-column backend. See the module docs
/// for the layout; see [`StorageBackend`] for the behavioral contract it
/// shares with [`TripleStore`].
pub struct ColumnStore {
    dict: Arc<Dictionary>,
    n: usize,
    /// Distinct subjects, ascending.
    subjects: PackedVec,
    /// `subjects.len() + 1` row offsets delimiting each subject's run.
    s_offsets: PackedVec,
    /// Per-row predicate, grouped by subject, sorted by `(p, o)` within
    /// each run.
    preds: PackedVec,
    /// Per-row object.
    objs: PackedVec,
    /// SPO row indexes sorted by `(p, o, s)`.
    pos_perm: PackedVec,
    /// Distinct predicates, ascending.
    pred_keys: PackedVec,
    /// `pred_keys.len() + 1` offsets into `pos_perm`.
    p_offsets: PackedVec,
    /// SPO row indexes sorted by `(o, s, p)`.
    osp_perm: PackedVec,
    /// Distinct objects, ascending.
    obj_keys: PackedVec,
    /// `obj_keys.len() + 1` offsets into `osp_perm`.
    o_offsets: PackedVec,
    rows_scanned: AtomicU64,
    reorder: AtomicBool,
}

impl ColumnStore {
    /// Builds the columnar layout from a populated [`TripleStore`]
    /// (already sorted and deduplicated by its SPO index).
    pub fn from_store(store: &TripleStore) -> ColumnStore {
        let mut rows = Vec::with_capacity(store.len());
        for (s, p, o) in store.triples_spo() {
            rows.push((s.0, p.0, o.0));
        }
        Self::from_rows(Arc::clone(store.dict()), rows)
    }

    /// Builds the columnar layout from raw triples (sorted and
    /// deduplicated here).
    pub fn from_triples(dict: Arc<Dictionary>, triples: Vec<Triple>) -> ColumnStore {
        let mut rows: Vec<(u32, u32, u32)> =
            triples.into_iter().map(|t| (t.s.0, t.p.0, t.o.0)).collect();
        rows.sort_unstable();
        rows.dedup();
        Self::from_rows(dict, rows)
    }

    fn from_rows(dict: Arc<Dictionary>, rows: Vec<(u32, u32, u32)>) -> ColumnStore {
        let n = rows.len();

        let mut subjects = Vec::new();
        let mut s_offsets = Vec::new();
        for (i, &(s, _, _)) in rows.iter().enumerate() {
            if subjects.last() != Some(&s) {
                subjects.push(s);
                s_offsets.push(i as u32);
            }
        }
        s_offsets.push(n as u32);

        let preds: Vec<u32> = rows.iter().map(|r| r.1).collect();
        let objs: Vec<u32> = rows.iter().map(|r| r.2).collect();

        let mut pos_perm: Vec<u32> = (0..n as u32).collect();
        pos_perm.sort_unstable_by_key(|&i| {
            let (s, p, o) = rows[i as usize];
            (p, o, s)
        });
        let mut pred_keys = Vec::new();
        let mut p_offsets = Vec::new();
        for (j, &row) in pos_perm.iter().enumerate() {
            let p = rows[row as usize].1;
            if pred_keys.last() != Some(&p) {
                pred_keys.push(p);
                p_offsets.push(j as u32);
            }
        }
        p_offsets.push(n as u32);

        let mut osp_perm: Vec<u32> = (0..n as u32).collect();
        osp_perm.sort_unstable_by_key(|&i| {
            let (s, p, o) = rows[i as usize];
            (o, s, p)
        });
        let mut obj_keys = Vec::new();
        let mut o_offsets = Vec::new();
        for (j, &row) in osp_perm.iter().enumerate() {
            let o = rows[row as usize].2;
            if obj_keys.last() != Some(&o) {
                obj_keys.push(o);
                o_offsets.push(j as u32);
            }
        }
        o_offsets.push(n as u32);
        drop(rows);

        ColumnStore {
            dict,
            n,
            subjects: PackedVec::build(&subjects),
            s_offsets: PackedVec::build(&s_offsets),
            preds: PackedVec::build(&preds),
            objs: PackedVec::build(&objs),
            pos_perm: PackedVec::build(&pos_perm),
            pred_keys: PackedVec::build(&pred_keys),
            p_offsets: PackedVec::build(&p_offsets),
            osp_perm: PackedVec::build(&osp_perm),
            obj_keys: PackedVec::build(&obj_keys),
            o_offsets: PackedVec::build(&o_offsets),
            rows_scanned: AtomicU64::new(0),
            reorder: AtomicBool::new(true),
        }
    }

    /// The subject id owning SPO row `row` — the rank of the last
    /// offset `<= row`.
    fn subject_of_row(&self, row: usize) -> u32 {
        let ns = self.subjects.len();
        let k = partition_point(0, ns, |k| (self.s_offsets.get(k + 1) as usize) <= row);
        self.subjects.get(k)
    }

    /// The `[start, end)` SPO row run for subject `s`, if present.
    fn subject_run(&self, s: u32) -> Option<(usize, usize)> {
        let ns = self.subjects.len();
        let k = partition_point(0, ns, |k| self.subjects.get(k) < s);
        if k < ns && self.subjects.get(k) == s {
            Some((
                self.s_offsets.get(k) as usize,
                self.s_offsets.get(k + 1) as usize,
            ))
        } else {
            None
        }
    }

    /// Narrows a subject run to its predicate sub-run (rows sorted by
    /// `(p, o)` within the run).
    fn pred_subrun(&self, run: (usize, usize), p: u32) -> (usize, usize) {
        let lo = partition_point(run.0, run.1, |i| self.preds.get(i) < p);
        let hi = partition_point(lo, run.1, |i| self.preds.get(i) <= p);
        (lo, hi)
    }

    /// Narrows an `(s, p)` sub-run to its object sub-run.
    fn obj_subrun(&self, run: (usize, usize), o: u32) -> (usize, usize) {
        let lo = partition_point(run.0, run.1, |i| self.objs.get(i) < o);
        let hi = partition_point(lo, run.1, |i| self.objs.get(i) <= o);
        (lo, hi)
    }

    /// The `[start, end)` run in `pos_perm` for predicate `p`.
    fn pred_run(&self, p: u32) -> (usize, usize) {
        let np = self.pred_keys.len();
        let k = partition_point(0, np, |k| self.pred_keys.get(k) < p);
        if k < np && self.pred_keys.get(k) == p {
            (
                self.p_offsets.get(k) as usize,
                self.p_offsets.get(k + 1) as usize,
            )
        } else {
            (0, 0)
        }
    }

    /// Narrows a `pos_perm` predicate run to its object sub-run (the run
    /// is sorted by `(o, s)`).
    fn pred_obj_subrun(&self, run: (usize, usize), o: u32) -> (usize, usize) {
        let obj_at = |j: usize| self.objs.get(self.pos_perm.get(j) as usize);
        let lo = partition_point(run.0, run.1, |j| obj_at(j) < o);
        let hi = partition_point(lo, run.1, |j| obj_at(j) <= o);
        (lo, hi)
    }

    /// The `[start, end)` run in `osp_perm` for object `o`.
    fn obj_run(&self, o: u32) -> (usize, usize) {
        let no = self.obj_keys.len();
        let k = partition_point(0, no, |k| self.obj_keys.get(k) < o);
        if k < no && self.obj_keys.get(k) == o {
            (
                self.o_offsets.get(k) as usize,
                self.o_offsets.get(k + 1) as usize,
            )
        } else {
            (0, 0)
        }
    }

    /// Narrows an `osp_perm` object run to its subject sub-run (the run
    /// is sorted by `(s, p)`).
    fn obj_subj_subrun(&self, run: (usize, usize), s: u32) -> (usize, usize) {
        let subj_at = |j: usize| self.subject_of_row(self.osp_perm.get(j) as usize);
        let lo = partition_point(run.0, run.1, |j| subj_at(j) < s);
        let hi = partition_point(lo, run.1, |j| subj_at(j) <= s);
        (lo, hi)
    }

    fn emit(&self, t: Triple, f: &mut dyn FnMut(Triple) -> bool) -> bool {
        self.rows_scanned.fetch_add(1, Ordering::Relaxed);
        f(t)
    }
}

impl StorageBackend for ColumnStore {
    fn kind(&self) -> BackendKind {
        BackendKind::Columns
    }

    fn dict(&self) -> &Arc<Dictionary> {
        &self.dict
    }

    fn len(&self) -> usize {
        self.n
    }

    fn contains(&self, t: Triple) -> bool {
        match self.subject_run(t.s.0) {
            Some(run) => {
                let sub = self.pred_subrun(run, t.p.0);
                let (lo, hi) = self.obj_subrun(sub, t.o.0);
                lo < hi
            }
            None => false,
        }
    }

    fn scan_with(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
        f: &mut dyn FnMut(Triple) -> bool,
    ) -> bool {
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                if self.contains(Triple::new(s, p, o)) {
                    self.emit(Triple::new(s, p, o), f)
                } else {
                    true
                }
            }
            (Some(s), Some(p), None) => {
                let Some(run) = self.subject_run(s.0) else {
                    return true;
                };
                let (lo, hi) = self.pred_subrun(run, p.0);
                for i in lo..hi {
                    let t = Triple::new(s, p, TermId(self.objs.get(i)));
                    if !self.emit(t, f) {
                        return false;
                    }
                }
                true
            }
            (Some(s), None, None) => {
                let Some((lo, hi)) = self.subject_run(s.0) else {
                    return true;
                };
                for i in lo..hi {
                    let t = Triple::new(s, TermId(self.preds.get(i)), TermId(self.objs.get(i)));
                    if !self.emit(t, f) {
                        return false;
                    }
                }
                true
            }
            (None, Some(p), Some(o)) => {
                let run = self.pred_run(p.0);
                let (lo, hi) = self.pred_obj_subrun(run, o.0);
                for j in lo..hi {
                    let row = self.pos_perm.get(j) as usize;
                    let t = Triple::new(TermId(self.subject_of_row(row)), p, o);
                    if !self.emit(t, f) {
                        return false;
                    }
                }
                true
            }
            (None, Some(p), None) => {
                let (lo, hi) = self.pred_run(p.0);
                for j in lo..hi {
                    let row = self.pos_perm.get(j) as usize;
                    let t = Triple::new(
                        TermId(self.subject_of_row(row)),
                        p,
                        TermId(self.objs.get(row)),
                    );
                    if !self.emit(t, f) {
                        return false;
                    }
                }
                true
            }
            (None, None, Some(o)) => {
                let (lo, hi) = self.obj_run(o.0);
                for j in lo..hi {
                    let row = self.osp_perm.get(j) as usize;
                    let t = Triple::new(
                        TermId(self.subject_of_row(row)),
                        TermId(self.preds.get(row)),
                        o,
                    );
                    if !self.emit(t, f) {
                        return false;
                    }
                }
                true
            }
            (Some(s), None, Some(o)) => {
                let run = self.obj_run(o.0);
                let (lo, hi) = self.obj_subj_subrun(run, s.0);
                for j in lo..hi {
                    let row = self.osp_perm.get(j) as usize;
                    let t = Triple::new(s, TermId(self.preds.get(row)), o);
                    if !self.emit(t, f) {
                        return false;
                    }
                }
                true
            }
            (None, None, None) => {
                let ns = self.subjects.len();
                for k in 0..ns {
                    let s = TermId(self.subjects.get(k));
                    let (lo, hi) = (
                        self.s_offsets.get(k) as usize,
                        self.s_offsets.get(k + 1) as usize,
                    );
                    for i in lo..hi {
                        let t = Triple::new(s, TermId(self.preds.get(i)), TermId(self.objs.get(i)));
                        if !self.emit(t, f) {
                            return false;
                        }
                    }
                }
                true
            }
        }
    }

    /// Exact for every shape: each pattern maps to a run whose length the
    /// sorted layout yields by binary search — no cap is needed because
    /// no walk happens.
    fn estimate(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> u64 {
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => u64::from(self.contains(Triple::new(s, p, o))),
            (Some(s), Some(p), None) => match self.subject_run(s.0) {
                Some(run) => {
                    let (lo, hi) = self.pred_subrun(run, p.0);
                    (hi - lo) as u64
                }
                None => 0,
            },
            (Some(s), None, None) => match self.subject_run(s.0) {
                Some((lo, hi)) => (hi - lo) as u64,
                None => 0,
            },
            (None, Some(p), Some(o)) => {
                let run = self.pred_run(p.0);
                let (lo, hi) = self.pred_obj_subrun(run, o.0);
                (hi - lo) as u64
            }
            (None, Some(p), None) => {
                let (lo, hi) = self.pred_run(p.0);
                (hi - lo) as u64
            }
            (None, None, Some(o)) => {
                let (lo, hi) = self.obj_run(o.0);
                (hi - lo) as u64
            }
            (Some(s), None, Some(o)) => {
                let run = self.obj_run(o.0);
                let (lo, hi) = self.obj_subj_subrun(run, s.0);
                (hi - lo) as u64
            }
            (None, None, None) => self.n as u64,
        }
    }

    fn predicate_stats(&self, p: TermId) -> Option<PredicateStats> {
        let (lo, hi) = self.pred_run(p.0);
        if lo < hi {
            Some(PredicateStats {
                triples: (hi - lo) as u64,
            })
        } else {
            None
        }
    }

    fn predicates(&self) -> Vec<(TermId, PredicateStats)> {
        (0..self.pred_keys.len())
            .map(|k| {
                let triples =
                    u64::from(self.p_offsets.get(k + 1)) - u64::from(self.p_offsets.get(k));
                (TermId(self.pred_keys.get(k)), PredicateStats { triples })
            })
            .collect()
    }

    fn distinct_subjects(&self, p: TermId) -> u64 {
        let (lo, hi) = self.pred_run(p.0);
        let mut set = FxHashSet::default();
        for j in lo..hi {
            set.insert(self.subject_of_row(self.pos_perm.get(j) as usize));
        }
        set.len() as u64
    }

    fn distinct_objects(&self, p: TermId) -> u64 {
        // The predicate run is sorted by (o, s): distinct objects are the
        // number of value changes along the run.
        let (lo, hi) = self.pred_run(p.0);
        let mut count = 0u64;
        let mut prev = None;
        for j in lo..hi {
            let o = self.objs.get(self.pos_perm.get(j) as usize);
            if prev != Some(o) {
                count += 1;
                prev = Some(o);
            }
        }
        count
    }

    fn for_each_spo(&self, f: &mut dyn FnMut(TermId, TermId, TermId)) {
        let ns = self.subjects.len();
        for k in 0..ns {
            let s = TermId(self.subjects.get(k));
            let (lo, hi) = (
                self.s_offsets.get(k) as usize,
                self.s_offsets.get(k + 1) as usize,
            );
            for i in lo..hi {
                f(s, TermId(self.preds.get(i)), TermId(self.objs.get(i)));
            }
        }
    }

    fn rows_scanned(&self) -> u64 {
        self.rows_scanned.load(Ordering::Relaxed)
    }

    fn reorder_enabled(&self) -> bool {
        self.reorder.load(Ordering::Relaxed)
    }

    fn set_reorder(&self, on: bool) {
        self.reorder.store(on, Ordering::Relaxed);
    }

    /// Exact: the sum of every packed column's word buffer plus the
    /// struct itself.
    fn resident_bytes(&self) -> u64 {
        self.subjects.heap_bytes()
            + self.s_offsets.heap_bytes()
            + self.preds.heap_bytes()
            + self.objs.heap_bytes()
            + self.pos_perm.heap_bytes()
            + self.pred_keys.heap_bytes()
            + self.p_offsets.heap_bytes()
            + self.osp_perm.heap_bytes()
            + self.obj_keys.heap_bytes()
            + self.o_offsets.heap_bytes()
            + std::mem::size_of::<ColumnStore>() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_rdf::Term;

    #[test]
    fn packed_vec_round_trips_across_word_boundaries() {
        // 27-bit values force every alignment of a value against the
        // 64-bit word grid within a few entries.
        let values: Vec<u32> = (0..200).map(|i| (i * 0x005A_5A5A) & 0x07FF_FFFF).collect();
        let pv = PackedVec::build(&values);
        assert_eq!(pv.bits(), 27);
        for (i, &v) in values.iter().enumerate() {
            assert_eq!(pv.get(i), v, "index {i}");
        }
    }

    #[test]
    fn packed_vec_handles_empty_zero_and_max() {
        let empty = PackedVec::build(&[]);
        assert!(empty.is_empty());
        assert_eq!(empty.heap_bytes(), 0);
        let zeros = PackedVec::build(&[0, 0, 0]);
        assert_eq!(zeros.bits(), 1);
        assert_eq!(zeros.get(2), 0);
        let max = PackedVec::build(&[u32::MAX, 7]);
        assert_eq!(max.bits(), 32);
        assert_eq!(max.get(0), u32::MAX);
        assert_eq!(max.get(1), 7);
    }

    fn both_backends(triples: &[(&str, &str, &str)]) -> (TripleStore, ColumnStore) {
        let dict = Dictionary::shared();
        let mut st = TripleStore::new(dict);
        for (s, p, o) in triples {
            st.insert_terms(&Term::iri(*s), &Term::iri(*p), &Term::iri(*o));
        }
        let cols = ColumnStore::from_store(&st);
        (st, cols)
    }

    #[test]
    fn scans_match_btree_on_all_paths() {
        let (st, cols) = both_backends(&[
            ("s1", "p1", "o1"),
            ("s1", "p1", "o2"),
            ("s1", "p2", "o1"),
            ("s2", "p1", "o1"),
            ("s3", "p2", "o3"),
        ]);
        let d = st.dict();
        let ids: Vec<Option<TermId>> = ["s1", "p1", "o1"]
            .iter()
            .map(|n| d.lookup(&Term::iri(*n)))
            .collect();
        let (s1, p1, o1) = (ids[0], ids[1], ids[2]);
        let shapes = [
            (None, None, None),
            (s1, None, None),
            (None, p1, None),
            (None, None, o1),
            (s1, p1, None),
            (None, p1, o1),
            (s1, None, o1),
            (s1, p1, o1),
        ];
        let cols_dyn: &dyn StorageBackend = &cols;
        for (s, p, o) in shapes {
            assert_eq!(
                st.matches(s, p, o),
                cols_dyn.matches(s, p, o),
                "shape ({s:?},{p:?},{o:?})"
            );
            assert_eq!(
                st.estimate(s, p, o),
                StorageBackend::estimate(&cols, s, p, o),
                "estimate ({s:?},{p:?},{o:?})"
            );
        }
    }

    #[test]
    fn absent_keys_scan_empty_and_estimate_zero() {
        let (st, cols) = both_backends(&[("s1", "p1", "o1")]);
        let ghost = st.dict().encode(&Term::iri("ghost"));
        let cols_dyn: &dyn StorageBackend = &cols;
        for (s, p, o) in [
            (Some(ghost), None, None),
            (None, Some(ghost), None),
            (None, None, Some(ghost)),
            (Some(ghost), Some(ghost), None),
            (None, Some(ghost), Some(ghost)),
            (Some(ghost), None, Some(ghost)),
            (Some(ghost), Some(ghost), Some(ghost)),
        ] {
            assert!(cols_dyn.matches(s, p, o).is_empty());
            assert_eq!(StorageBackend::estimate(&cols, s, p, o), 0);
        }
        assert!(!StorageBackend::contains(
            &cols,
            Triple::new(ghost, ghost, ghost)
        ));
    }

    #[test]
    fn rows_scanned_semantics_match_btree() {
        let (st, cols) = both_backends(&[("s1", "p", "o1"), ("s2", "p", "o2"), ("s3", "p", "o3")]);
        let p = st.dict().lookup(&Term::iri("p")).unwrap();
        let cols_dyn: &dyn StorageBackend = &cols;
        assert_eq!(cols_dyn.rows_scanned(), 0);
        cols_dyn.matches(None, None, None);
        assert_eq!(cols_dyn.rows_scanned(), 3);
        cols_dyn.matches(None, Some(p), None);
        assert_eq!(cols_dyn.rows_scanned(), 6);
        // Early-exiting scans only count what they actually visited.
        cols_dyn.scan(None, None, None, |_| false);
        assert_eq!(cols_dyn.rows_scanned(), 7);
        // Estimation, contains, and the stats iterator are planning work.
        StorageBackend::estimate(&cols, None, Some(p), None);
        StorageBackend::contains(&cols, Triple::new(p, p, p));
        cols_dyn.for_each_spo(&mut |_, _, _| {});
        assert_eq!(cols_dyn.rows_scanned(), 7);
    }

    #[test]
    fn predicate_stats_and_distinct_counts_match_btree() {
        let (st, cols) = both_backends(&[
            ("s1", "p", "o1"),
            ("s1", "p", "o2"),
            ("s2", "p", "o2"),
            ("s2", "q", "o3"),
        ]);
        let p = st.dict().lookup(&Term::iri("p")).unwrap();
        let q = st.dict().lookup(&Term::iri("q")).unwrap();
        assert_eq!(
            StorageBackend::predicate_stats(&cols, p),
            st.predicate_stats(p)
        );
        assert_eq!(
            StorageBackend::predicate_stats(&cols, q),
            st.predicate_stats(q)
        );
        assert_eq!(StorageBackend::predicate_stats(&cols, TermId(9999)), None);
        assert_eq!(StorageBackend::distinct_subjects(&cols, p), 2);
        assert_eq!(StorageBackend::distinct_objects(&cols, p), 2);
        assert_eq!(StorageBackend::distinct_subjects(&cols, q), 1);
        let mut from_trait: Vec<_> = StorageBackend::predicates(&cols);
        let mut from_btree: Vec<_> = st.predicates().collect();
        from_trait.sort_by_key(|(t, _)| t.0);
        from_btree.sort_by_key(|(t, _)| t.0);
        assert_eq!(from_trait, from_btree);
    }

    #[test]
    fn for_each_spo_order_matches_btree() {
        let (st, cols) = both_backends(&[
            ("z", "p", "a"),
            ("a", "q", "z"),
            ("m", "p", "m"),
            ("a", "p", "b"),
        ]);
        let mut btree_order = Vec::new();
        for t in st.triples_spo() {
            btree_order.push(t);
        }
        let mut cols_order = Vec::new();
        (&cols as &dyn StorageBackend).for_each_spo(&mut |s, p, o| cols_order.push((s, p, o)));
        assert_eq!(btree_order, cols_order);
    }

    #[test]
    fn columnar_estimates_are_exact_beyond_the_btree_cap() {
        let dict = Dictionary::shared();
        let mut st = TripleStore::new(Arc::clone(&dict));
        let p = dict.encode(&Term::iri("p"));
        let s = dict.encode(&Term::iri("hub"));
        for i in 0..200 {
            let o = dict.encode(&Term::iri(format!("o{i}")));
            st.insert(Triple::new(s, p, o));
        }
        let cols = ColumnStore::from_store(&st);
        // The BTree walk saturates at the cap; the columnar run length is
        // the true count.
        assert_eq!(st.estimate(Some(s), None, None), crate::store::ESTIMATE_CAP);
        assert_eq!(StorageBackend::estimate(&cols, Some(s), None, None), 200);
        // Predicate-only estimates are exact on both (stats-backed).
        assert_eq!(st.estimate(None, Some(p), None), 200);
        assert_eq!(StorageBackend::estimate(&cols, None, Some(p), None), 200);
    }

    #[test]
    fn resident_bytes_beats_btree_model_at_scale() {
        let dict = Dictionary::shared();
        let mut st = TripleStore::new(Arc::clone(&dict));
        let mut k = 0u32;
        for s in 0..100 {
            for o in 0..20 {
                let sid = dict.encode(&Term::iri(format!("s{s}")));
                let pid = dict.encode(&Term::iri(format!("p{}", k % 7)));
                let oid = dict.encode(&Term::iri(format!("o{o}_{s}")));
                st.insert(Triple::new(sid, pid, oid));
                k += 1;
            }
        }
        let cols = ColumnStore::from_store(&st);
        let cols_bytes = StorageBackend::resident_bytes(&cols);
        let btree_bytes = StorageBackend::resident_bytes(&st);
        assert!(
            cols_bytes * 3 < btree_bytes,
            "columns {cols_bytes} vs btree model {btree_bytes}"
        );
        // Per-triple footprint should be in the low tens of bytes.
        assert!(cols_bytes / (st.len() as u64) < 20);
    }

    #[test]
    fn empty_store_is_safe_on_every_path() {
        let dict = Dictionary::shared();
        let st = TripleStore::new(Arc::clone(&dict));
        let cols = ColumnStore::from_store(&st);
        let cols_dyn: &dyn StorageBackend = &cols;
        assert_eq!(cols_dyn.len(), 0);
        assert!(cols_dyn.is_empty());
        let x = TermId(1);
        for (s, p, o) in [
            (None, None, None),
            (Some(x), None, None),
            (None, Some(x), None),
            (None, None, Some(x)),
            (Some(x), Some(x), Some(x)),
        ] {
            assert!(cols_dyn.matches(s, p, o).is_empty());
            assert_eq!(StorageBackend::estimate(&cols, s, p, o), 0);
        }
        assert!(StorageBackend::predicates(&cols).is_empty());
        assert_eq!(cols_dyn.rows_scanned(), 0);
    }
}
