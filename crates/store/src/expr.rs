//! FILTER expression evaluation.
//!
//! Follows SPARQL's effective-boolean-value discipline in simplified form:
//! type errors (e.g. comparing an unbound variable) make the enclosing
//! filter reject the row rather than aborting the query.

use lusail_rdf::{Dictionary, Term, TermId};
use lusail_sparql::ast::{CmpOp, Expression};

/// The value lattice for expression evaluation.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// An RDF term (by id).
    Term(TermId),
    /// A derived string (result of STR/LANG).
    Str(String),
    /// A boolean.
    Bool(bool),
    /// Evaluation error (unbound variable, type mismatch).
    Error,
}

/// A row context: resolves variable names to bound term ids.
pub trait VarContext {
    /// The binding of `var`, or `None` if unbound.
    fn value_of(&self, var: &str) -> Option<TermId>;
}

impl VarContext for (&[String], &[Option<TermId>]) {
    fn value_of(&self, var: &str) -> Option<TermId> {
        self.0.iter().position(|v| v == var).and_then(|i| self.1[i])
    }
}

/// Evaluates `expr` to its effective boolean value in `ctx`. Errors count
/// as `false`, per SPARQL FILTER semantics.
pub fn eval_filter(expr: &Expression, ctx: &dyn VarContext, dict: &Dictionary) -> bool {
    match eval(expr, ctx, dict) {
        Value::Bool(b) => b,
        Value::Term(id) => term_ebv(&dict.decode(id)),
        Value::Str(s) => !s.is_empty(),
        Value::Error => false,
    }
}

fn term_ebv(t: &Term) -> bool {
    match t {
        Term::Literal {
            lexical, datatype, ..
        } => {
            // SPARQL EBV: numeric literals are false when 0/NaN; boolean
            // literals by value; plain and xsd:string literals are false
            // only when empty. A plain "0" is a *string* and therefore
            // true.
            let numeric = datatype.as_deref().is_some_and(|dt| {
                dt.starts_with("http://www.w3.org/2001/XMLSchema#") && !dt.ends_with("#string")
            });
            if numeric {
                match lexical.as_str() {
                    "true" => true,
                    "false" => false,
                    _ => lexical.parse::<f64>().map(|n| n != 0.0).unwrap_or(false),
                }
            } else {
                !lexical.is_empty()
            }
        }
        // IRIs/blank nodes have no boolean value in SPARQL; treating them
        // as true keeps `FILTER(?x)` harmless for the workloads used here.
        _ => true,
    }
}

/// Evaluates an expression to a [`Value`].
pub fn eval(expr: &Expression, ctx: &dyn VarContext, dict: &Dictionary) -> Value {
    match expr {
        Expression::Var(v) => match ctx.value_of(v) {
            Some(id) => Value::Term(id),
            None => Value::Error,
        },
        Expression::Const(id) => Value::Term(*id),
        Expression::Bound(v) => Value::Bool(ctx.value_of(v).is_some()),
        Expression::Not(inner) => match eval(inner, ctx, dict) {
            Value::Error => Value::Error,
            v => Value::Bool(!value_ebv(&v, dict)),
        },
        Expression::And(a, b) => {
            // SPARQL logical AND: false wins over error.
            let va = eval(a, ctx, dict);
            let vb = eval(b, ctx, dict);
            match (ebv_opt(&va, dict), ebv_opt(&vb, dict)) {
                (Some(false), _) | (_, Some(false)) => Value::Bool(false),
                (Some(true), Some(true)) => Value::Bool(true),
                _ => Value::Error,
            }
        }
        Expression::Or(a, b) => {
            let va = eval(a, ctx, dict);
            let vb = eval(b, ctx, dict);
            match (ebv_opt(&va, dict), ebv_opt(&vb, dict)) {
                (Some(true), _) | (_, Some(true)) => Value::Bool(true),
                (Some(false), Some(false)) => Value::Bool(false),
                _ => Value::Error,
            }
        }
        Expression::Cmp(op, a, b) => {
            let va = eval(a, ctx, dict);
            let vb = eval(b, ctx, dict);
            compare(*op, &va, &vb, dict)
        }
        Expression::Str(inner) => match eval(inner, ctx, dict) {
            Value::Term(id) => Value::Str(dict.decode(id).lexical().to_string()),
            Value::Str(s) => Value::Str(s),
            Value::Bool(b) => Value::Str(b.to_string()),
            Value::Error => Value::Error,
        },
        Expression::Lang(inner) => match eval(inner, ctx, dict) {
            Value::Term(id) => match &*dict.decode(id) {
                Term::Literal {
                    lang: Some(lang), ..
                } => Value::Str(lang.clone()),
                Term::Literal { .. } => Value::Str(String::new()),
                _ => Value::Error,
            },
            _ => Value::Error,
        },
        Expression::LangMatches(inner, range) => match eval(inner, ctx, dict) {
            Value::Str(tag) => {
                if range == "*" {
                    Value::Bool(!tag.is_empty())
                } else {
                    Value::Bool(
                        tag.eq_ignore_ascii_case(range)
                            || tag
                                .to_ascii_lowercase()
                                .starts_with(&format!("{}-", range.to_ascii_lowercase())),
                    )
                }
            }
            _ => Value::Error,
        },
        Expression::Regex(inner, pattern, ci) => match string_of(eval(inner, ctx, dict), dict) {
            Some(s) => Value::Bool(substring_match(&s, pattern, *ci)),
            None => Value::Error,
        },
        Expression::Contains(inner, needle) => match string_of(eval(inner, ctx, dict), dict) {
            Some(s) => Value::Bool(s.contains(needle)),
            None => Value::Error,
        },
    }
}

fn value_ebv(v: &Value, dict: &Dictionary) -> bool {
    match v {
        Value::Bool(b) => *b,
        Value::Term(id) => term_ebv(&dict.decode(*id)),
        Value::Str(s) => !s.is_empty(),
        Value::Error => false,
    }
}

fn ebv_opt(v: &Value, dict: &Dictionary) -> Option<bool> {
    match v {
        Value::Error => None,
        v => Some(value_ebv(v, dict)),
    }
}

fn string_of(v: Value, dict: &Dictionary) -> Option<String> {
    match v {
        Value::Term(id) => Some(dict.decode(id).lexical().to_string()),
        Value::Str(s) => Some(s),
        Value::Bool(b) => Some(b.to_string()),
        Value::Error => None,
    }
}

/// REGEX support is restricted to the patterns the benchmark queries use:
/// a plain substring, optionally anchored with `^` and/or `$` (escape the
/// anchors as `\^` / `\$` to match them literally).
fn substring_match(s: &str, pattern: &str, ci: bool) -> bool {
    let (s, pattern) = if ci {
        (s.to_lowercase(), pattern.to_lowercase())
    } else {
        (s.to_string(), pattern.to_string())
    };
    let anchored_start = pattern.starts_with('^');
    let anchored_end = pattern.ends_with('$') && !pattern.ends_with("\\$");
    let mut core = pattern;
    if anchored_start {
        core.remove(0);
    }
    if anchored_end {
        core.pop();
    }
    // Unescape literal anchors inside the core.
    let core = core.replace("\\^", "^").replace("\\$", "$");
    match (anchored_start, anchored_end) {
        (true, true) => s == core,
        (true, false) => s.starts_with(&core),
        (false, true) => s.ends_with(&core),
        (false, false) => s.contains(&core),
    }
}

fn compare(op: CmpOp, a: &Value, b: &Value, dict: &Dictionary) -> Value {
    use std::cmp::Ordering;
    if matches!(a, Value::Error) || matches!(b, Value::Error) {
        return Value::Error;
    }
    // Numeric comparison when both sides are numeric.
    let num = |v: &Value| -> Option<f64> {
        match v {
            Value::Term(id) => dict.decode(*id).as_f64(),
            Value::Str(s) => s.parse().ok(),
            Value::Bool(_) => None,
            Value::Error => None,
        }
    };
    let ord = if let (Some(x), Some(y)) = (num(a), num(b)) {
        x.partial_cmp(&y)
    } else if let (Value::Term(x), Value::Term(y)) = (a, b) {
        if x == y {
            Some(Ordering::Equal)
        } else {
            let tx = dict.decode(*x);
            let ty = dict.decode(*y);
            match (&*tx, &*ty) {
                // Literal vs literal: lexical-form comparison (the string
                // case of SPARQL's operator mapping).
                (Term::Literal { .. }, Term::Literal { .. }) => Some(tx.cmp(&ty)),
                // Same-kind non-literals: equality is term equality; an
                // *ordering* between IRIs/blank nodes is a SPARQL type
                // error, handled below.
                _ if matches!(op, CmpOp::Eq | CmpOp::Ne) => Some(tx.cmp(&ty)),
                _ => None,
            }
        }
    } else {
        let sa = string_of(a.clone(), dict);
        let sb = string_of(b.clone(), dict);
        match (sa, sb) {
            (Some(x), Some(y)) => Some(x.cmp(&y)),
            _ => None,
        }
    };
    let Some(ord) = ord else { return Value::Error };
    let result = match op {
        CmpOp::Eq => ord == Ordering::Equal,
        CmpOp::Ne => ord != Ordering::Equal,
        CmpOp::Lt => ord == Ordering::Less,
        CmpOp::Le => ord != Ordering::Greater,
        CmpOp::Gt => ord == Ordering::Greater,
        CmpOp::Ge => ord != Ordering::Less,
    };
    Value::Bool(result)
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_sparql::parse_query;

    struct Ctx<'a> {
        vars: Vec<(&'a str, TermId)>,
    }

    impl VarContext for Ctx<'_> {
        fn value_of(&self, var: &str) -> Option<TermId> {
            self.vars.iter().find(|(v, _)| *v == var).map(|(_, id)| *id)
        }
    }

    /// Parses `FILTER (…)` out of a probe query to get an Expression.
    fn expr(dict: &Dictionary, text: &str) -> Expression {
        let q = parse_query(
            &format!("SELECT ?x WHERE {{ ?x ?p ?o . FILTER ({text}) }}"),
            dict,
        )
        .unwrap();
        q.pattern.filters[0].clone()
    }

    #[test]
    fn numeric_comparisons() {
        let dict = Dictionary::new();
        let age = dict.encode(&Term::int(25));
        let ctx = Ctx {
            vars: vec![("a", age)],
        };
        assert!(eval_filter(&expr(&dict, "?a >= 18"), &ctx, &dict));
        assert!(eval_filter(&expr(&dict, "?a < 65"), &ctx, &dict));
        assert!(!eval_filter(&expr(&dict, "?a = 24"), &ctx, &dict));
        assert!(eval_filter(&expr(&dict, "?a != 24"), &ctx, &dict));
    }

    #[test]
    fn numeric_compare_across_datatypes() {
        let dict = Dictionary::new();
        let v = dict.encode(&Term::lit("3.5"));
        let ctx = Ctx {
            vars: vec![("a", v)],
        };
        assert!(eval_filter(&expr(&dict, "?a > 3"), &ctx, &dict));
    }

    #[test]
    fn unbound_variable_is_error_hence_false() {
        let dict = Dictionary::new();
        let ctx = Ctx { vars: vec![] };
        assert!(!eval_filter(&expr(&dict, "?missing = 1"), &ctx, &dict));
        assert!(!eval_filter(&expr(&dict, "BOUND(?missing)"), &ctx, &dict));
        assert!(eval_filter(&expr(&dict, "!BOUND(?missing)"), &ctx, &dict));
    }

    #[test]
    fn and_or_error_propagation() {
        let dict = Dictionary::new();
        let v = dict.encode(&Term::int(1));
        let ctx = Ctx {
            vars: vec![("a", v)],
        };
        // false && error = false; true || error = true.
        assert!(!eval_filter(
            &expr(&dict, "?a = 2 && ?missing = 1"),
            &ctx,
            &dict
        ));
        assert!(eval_filter(
            &expr(&dict, "?a = 1 || ?missing = 1"),
            &ctx,
            &dict
        ));
        // true && error = error → filter false.
        assert!(!eval_filter(
            &expr(&dict, "?a = 1 && ?missing = 1"),
            &ctx,
            &dict
        ));
    }

    #[test]
    fn string_builtins() {
        let dict = Dictionary::new();
        let name = dict.encode(&Term::lang_lit("Alice Smith", "en"));
        let ctx = Ctx {
            vars: vec![("n", name)],
        };
        assert!(eval_filter(
            &expr(&dict, "CONTAINS(STR(?n), \"Smith\")"),
            &ctx,
            &dict
        ));
        assert!(!eval_filter(
            &expr(&dict, "CONTAINS(STR(?n), \"Bob\")"),
            &ctx,
            &dict
        ));
        assert!(eval_filter(
            &expr(&dict, "REGEX(?n, \"smith\", \"i\")"),
            &ctx,
            &dict
        ));
        assert!(eval_filter(
            &expr(&dict, "REGEX(?n, \"^Alice\")"),
            &ctx,
            &dict
        ));
        assert!(!eval_filter(
            &expr(&dict, "REGEX(?n, \"^Smith\")"),
            &ctx,
            &dict
        ));
        assert!(eval_filter(&expr(&dict, "LANG(?n) = \"en\""), &ctx, &dict));
        assert!(eval_filter(
            &expr(&dict, "LANGMATCHES(LANG(?n), \"en\")"),
            &ctx,
            &dict
        ));
        assert!(eval_filter(
            &expr(&dict, "LANGMATCHES(LANG(?n), \"*\")"),
            &ctx,
            &dict
        ));
    }

    #[test]
    fn iri_equality() {
        let dict = Dictionary::new();
        let x = dict.encode(&Term::iri("http://x/a"));
        let ctx = Ctx {
            vars: vec![("x", x)],
        };
        assert!(eval_filter(&expr(&dict, "?x = <http://x/a>"), &ctx, &dict));
        assert!(!eval_filter(&expr(&dict, "?x = <http://x/b>"), &ctx, &dict));
        assert!(eval_filter(&expr(&dict, "?x != <http://x/b>"), &ctx, &dict));
    }

    #[test]
    fn lexicographic_string_compare() {
        let dict = Dictionary::new();
        let v = dict.encode(&Term::lit("banana"));
        let ctx = Ctx {
            vars: vec![("s", v)],
        };
        assert!(eval_filter(&expr(&dict, "?s > \"apple\""), &ctx, &dict));
        assert!(eval_filter(&expr(&dict, "?s < \"cherry\""), &ctx, &dict));
    }
}
