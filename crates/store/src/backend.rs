//! The [`StorageBackend`] trait: the storage contract every local store
//! implementation answers, and the [`BackendKind`] selector harnesses and
//! CLIs plumb through construction.
//!
//! Two backends implement the trait:
//!
//! * [`TripleStore`] — three `BTreeSet` orderings (SPO/POS/OSP), mutable,
//!   the default;
//! * [`ColumnStore`](crate::ColumnStore) — a bit-packed sorted-column
//!   layout built once from a populated store, immutable, several times
//!   smaller in resident memory.
//!
//! The contract is *observational equivalence*: for the same triples, both
//! backends must hand [`scan`](StorageBackend::scan_with) callbacks the
//! same triples in the same order on every one of the eight bound/unbound
//! access paths, charge [`rows_scanned`](StorageBackend::rows_scanned)
//! identically (one unit per triple handed to a scan callback — estimation
//! probes and the [`for_each_spo`](StorageBackend::for_each_spo) planning
//! iterator are exempt), and agree on
//! [`estimate`](StorageBackend::estimate) up to the documented cap (see
//! below). `tests/differential.rs` and `tests/properties.rs` enforce this
//! with a backend-differential oracle.
//!
//! # Estimate contract
//!
//! Both backends are **exact** for the fully-bound probe (0 or 1), the
//! predicate-only pattern `(?, p, ?)` (per-predicate statistics), and the
//! all-free pattern (store size). For the remaining five shapes the BTree
//! backend counts the matching index range but caps the walk at
//! [`ESTIMATE_CAP`](crate::store::ESTIMATE_CAP) entries, while the
//! columnar backend derives the exact count from its sorted-run
//! boundaries for free. The documented bound therefore is:
//! `btree_estimate == min(columns_estimate, ESTIMATE_CAP)`, with the
//! columnar estimate equal to the true match count.

use crate::columns::ColumnStore;
use crate::store::{PredicateStats, TripleStore};
use lusail_rdf::{Dictionary, TermId, Triple};
use std::sync::Arc;

/// Which storage backend to materialize an endpoint's triples into.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum BackendKind {
    /// The mutable `BTreeSet`-based [`TripleStore`] (the default).
    #[default]
    Btree,
    /// The immutable bit-packed [`ColumnStore`](crate::ColumnStore).
    Columns,
}

impl BackendKind {
    /// Both backends, in canonical order.
    pub const ALL: [BackendKind; 2] = [BackendKind::Btree, BackendKind::Columns];

    /// The backend's stable display name (`"btree"` / `"columns"`).
    pub fn name(self) -> &'static str {
        match self {
            BackendKind::Btree => "btree",
            BackendKind::Columns => "columns",
        }
    }

    /// Parses a `--backend` argument (case-insensitive).
    pub fn parse(s: &str) -> Option<BackendKind> {
        BackendKind::ALL
            .into_iter()
            .find(|k| k.name().eq_ignore_ascii_case(s))
    }

    /// Materializes a populated [`TripleStore`] into this backend: the
    /// BTree kind keeps the store as-is, the columnar kind rebuilds it
    /// into a [`ColumnStore`](crate::ColumnStore) and drops the B-trees.
    pub fn realize(self, store: TripleStore) -> Box<dyn StorageBackend> {
        match self {
            BackendKind::Btree => Box::new(store),
            BackendKind::Columns => Box::new(ColumnStore::from_store(&store)),
        }
    }
}

impl std::fmt::Display for BackendKind {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The storage contract behind every [`LocalEndpoint`]: triple-pattern
/// scans with bound-position dispatch, cardinality estimates, per-predicate
/// statistics, and rows-scanned accounting.
///
/// All methods take `&self`; the work counters are interior-mutable
/// atomics so an assembled federation's endpoints can be observed and
/// reconfigured without tearing them down.
///
/// [`LocalEndpoint`]: ../../lusail_endpoint/struct.LocalEndpoint.html
pub trait StorageBackend: Send + Sync {
    /// Which backend this is.
    fn kind(&self) -> BackendKind;

    /// The backend's shared term dictionary.
    fn dict(&self) -> &Arc<Dictionary>;

    /// Number of triples stored.
    fn len(&self) -> usize;

    /// True if the backend holds no triples.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// True if the exact triple is present. Planning-time probe — not
    /// charged to [`rows_scanned`](StorageBackend::rows_scanned).
    fn contains(&self, t: Triple) -> bool;

    /// Matches a triple pattern with optionally-bound positions, invoking
    /// `f` for each matching triple *in index order* (SPO order for
    /// subject-led paths, `(p,o,s)` for predicate-led, `(o,s,p)` for
    /// object-led — identical across backends). Returns early (with
    /// `false`) if `f` returns `false`; returns `true` if the scan ran to
    /// completion. Every triple handed to `f` charges one unit to
    /// [`rows_scanned`](StorageBackend::rows_scanned).
    ///
    /// Prefer the generic [`scan`](trait.StorageBackend.html#method.scan)
    /// wrapper on `dyn StorageBackend` at call sites.
    fn scan_with(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
        f: &mut dyn FnMut(Triple) -> bool,
    ) -> bool;

    /// Estimated number of matches for a pattern, used by the BGP join
    /// orderer. See the module docs for the cross-backend contract.
    /// Planning work — never charged to `rows_scanned`.
    fn estimate(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> u64;

    /// Per-predicate statistics (None if the predicate never occurs).
    fn predicate_stats(&self, p: TermId) -> Option<PredicateStats>;

    /// All predicates with their statistics (order unspecified).
    fn predicates(&self) -> Vec<(TermId, PredicateStats)>;

    /// Number of distinct subjects for a predicate (used by the
    /// SPLENDID-style VOID preprocessing pass).
    fn distinct_subjects(&self, p: TermId) -> u64;

    /// Number of distinct objects for a predicate.
    fn distinct_objects(&self, p: TermId) -> u64;

    /// Invokes `f` for every triple in subject-grouped (SPO) order.
    /// Planning-time work — used by the offline statistics build — so it
    /// is **exempt** from `rows_scanned`, unlike
    /// [`scan_with`](StorageBackend::scan_with). (This is the trait form
    /// of `TripleStore::triples_spo`, which carries the same exemption.)
    fn for_each_spo(&self, f: &mut dyn FnMut(TermId, TermId, TermId));

    /// Total triples handed to scan callbacks since the backend was built
    /// — the store-side work counter the bench harness gates on.
    fn rows_scanned(&self) -> u64;

    /// Whether the BGP evaluator may reorder patterns by estimated
    /// cardinality.
    fn reorder_enabled(&self) -> bool;

    /// Enables or disables selectivity-greedy pattern reordering for BGPs
    /// evaluated against this backend.
    fn set_reorder(&self, on: bool);

    /// Resident heap bytes held by the backend's index structures. Exact
    /// for the columnar backend (a sum over its packed buffers); a coarse
    /// per-triple model for the BTree backend. The bench harness measures
    /// the real allocator delta independently — this method feeds display
    /// lines, not gates.
    fn resident_bytes(&self) -> u64;
}

impl dyn StorageBackend + '_ {
    /// Generic-closure convenience over
    /// [`scan_with`](StorageBackend::scan_with), restoring the ergonomic
    /// `store.scan(s, p, o, |t| ...)` shape at call sites.
    pub fn scan(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
        mut f: impl FnMut(Triple) -> bool,
    ) -> bool {
        self.scan_with(s, p, o, &mut f)
    }

    /// Collects all matches of a pattern into a vector (convenience for
    /// tests and small scans).
    pub fn matches(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> Vec<Triple> {
        let mut out = Vec::new();
        self.scan(s, p, o, |t| {
            out.push(t);
            true
        });
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use lusail_rdf::Term;

    #[test]
    fn backend_kind_parses_and_displays() {
        assert_eq!(BackendKind::parse("btree"), Some(BackendKind::Btree));
        assert_eq!(BackendKind::parse("COLUMNS"), Some(BackendKind::Columns));
        assert_eq!(BackendKind::parse("rocksdb"), None);
        assert_eq!(BackendKind::Columns.to_string(), "columns");
        assert_eq!(BackendKind::default(), BackendKind::Btree);
    }

    #[test]
    fn realize_preserves_data_on_both_kinds() {
        for kind in BackendKind::ALL {
            let dict = Dictionary::shared();
            let mut st = TripleStore::new(Arc::clone(&dict));
            st.insert_terms(&Term::iri("s"), &Term::iri("p"), &Term::iri("o"));
            st.insert_terms(&Term::iri("s2"), &Term::iri("p"), &Term::iri("o"));
            let backend = kind.realize(st);
            assert_eq!(backend.kind(), kind);
            assert_eq!(backend.len(), 2);
            assert!(!backend.is_empty());
            assert_eq!(backend.matches(None, None, None).len(), 2);
            assert!(backend.resident_bytes() > 0);
        }
    }
}
