//! The triple store: three sorted indexes plus predicate statistics.

use lusail_rdf::{Dictionary, FxHashMap, FxHashSet, Term, TermId, Triple};
use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

type Key = (u32, u32, u32);

/// Index probes stop counting at this many entries when estimating a
/// pattern's cardinality: beyond it, "large" is all the join orderer
/// needs to know, and an unbounded count would turn planning into a scan.
/// Public because the cross-backend estimate contract (see
/// [`crate::backend`]) is stated in terms of this cap.
pub const ESTIMATE_CAP: u64 = 64;

/// Statistics maintained per predicate, updated on insert.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PredicateStats {
    /// Number of triples with this predicate.
    pub triples: u64,
}

/// An in-memory triple store over a shared [`Dictionary`].
///
/// Inserts maintain SPO/POS/OSP orderings so any combination of bound
/// positions in a triple pattern maps to a contiguous range scan.
///
/// ```
/// use lusail_rdf::{Dictionary, Term};
/// use lusail_store::TripleStore;
///
/// let dict = Dictionary::shared();
/// let mut store = TripleStore::new(std::sync::Arc::clone(&dict));
/// store.insert_terms(
///     &Term::iri("http://x/s"),
///     &Term::iri("http://x/p"),
///     &Term::lit("o"),
/// );
/// let p = dict.lookup(&Term::iri("http://x/p")).unwrap();
/// assert_eq!(store.matches(None, Some(p), None).len(), 1);
/// ```
pub struct TripleStore {
    dict: Arc<Dictionary>,
    spo: BTreeSet<Key>,
    pos: BTreeSet<Key>,
    osp: BTreeSet<Key>,
    pred_stats: FxHashMap<TermId, PredicateStats>,
    /// Monotonic count of triples handed to [`TripleStore::scan`]
    /// callbacks — the store-side work counter the bench harness gates on.
    rows_scanned: AtomicU64,
    /// Whether BGP evaluation may reorder patterns by estimated
    /// cardinality (on by default; the bench harness flips it off to
    /// measure the unordered baseline).
    reorder: AtomicBool,
}

impl TripleStore {
    /// Creates an empty store over the given dictionary.
    pub fn new(dict: Arc<Dictionary>) -> Self {
        TripleStore {
            dict,
            spo: BTreeSet::new(),
            pos: BTreeSet::new(),
            osp: BTreeSet::new(),
            pred_stats: FxHashMap::default(),
            rows_scanned: AtomicU64::new(0),
            reorder: AtomicBool::new(true),
        }
    }

    /// Total triples handed to scan callbacks since the store was built.
    /// The indexes answer every pattern with an exact range, so this is
    /// precisely the number of index entries the store had to visit.
    pub fn rows_scanned(&self) -> u64 {
        self.rows_scanned.load(Ordering::Relaxed)
    }

    /// Whether the BGP evaluator may reorder patterns (see
    /// [`TripleStore::set_reorder`]).
    pub fn reorder_enabled(&self) -> bool {
        self.reorder.load(Ordering::Relaxed)
    }

    /// Enables or disables selectivity-greedy pattern reordering for BGPs
    /// evaluated against this store. Takes `&self` so an assembled
    /// federation's endpoints can be switched without tearing them down.
    pub fn set_reorder(&self, on: bool) {
        self.reorder.store(on, Ordering::Relaxed);
    }

    /// The store's dictionary.
    pub fn dict(&self) -> &Arc<Dictionary> {
        &self.dict
    }

    /// Inserts a triple. Returns true if it was not already present.
    pub fn insert(&mut self, t: Triple) -> bool {
        let added = self.spo.insert((t.s.0, t.p.0, t.o.0));
        if added {
            self.pos.insert((t.p.0, t.o.0, t.s.0));
            self.osp.insert((t.o.0, t.s.0, t.p.0));
            self.pred_stats.entry(t.p).or_default().triples += 1;
        }
        added
    }

    /// Convenience: encodes three terms and inserts the triple.
    pub fn insert_terms(&mut self, s: &Term, p: &Term, o: &Term) -> bool {
        let t = Triple::new(
            self.dict.encode(s),
            self.dict.encode(p),
            self.dict.encode(o),
        );
        self.insert(t)
    }

    /// Bulk-inserts triples.
    pub fn extend(&mut self, triples: impl IntoIterator<Item = Triple>) {
        for t in triples {
            self.insert(t);
        }
    }

    /// Number of triples in the store.
    pub fn len(&self) -> usize {
        self.spo.len()
    }

    /// True if the store holds no triples.
    pub fn is_empty(&self) -> bool {
        self.spo.is_empty()
    }

    /// True if the exact triple is present.
    pub fn contains(&self, t: Triple) -> bool {
        self.spo.contains(&(t.s.0, t.p.0, t.o.0))
    }

    /// Per-predicate statistics (None if the predicate never occurs).
    pub fn predicate_stats(&self, p: TermId) -> Option<PredicateStats> {
        self.pred_stats.get(&p).copied()
    }

    /// Iterates over all predicates with their statistics.
    pub fn predicates(&self) -> impl Iterator<Item = (TermId, PredicateStats)> + '_ {
        self.pred_stats.iter().map(|(k, v)| (*k, *v))
    }

    /// Number of distinct subjects for a predicate (scan; used by the
    /// SPLENDID-style VOID preprocessing pass, whose cost the paper
    /// measures).
    pub fn distinct_subjects(&self, p: TermId) -> u64 {
        let mut set = FxHashSet::default();
        for &(_, _, s) in self.pos.range((p.0, 0, 0)..=(p.0, u32::MAX, u32::MAX)) {
            set.insert(s);
        }
        set.len() as u64
    }

    /// Number of distinct objects for a predicate (scan).
    pub fn distinct_objects(&self, p: TermId) -> u64 {
        let mut set = FxHashSet::default();
        for &(_, o, _) in self.pos.range((p.0, 0, 0)..=(p.0, u32::MAX, u32::MAX)) {
            set.insert(o);
        }
        set.len() as u64
    }

    /// Iterates over every triple in subject-grouped (SPO) order.
    /// Planning-time work — used by the offline statistics build — so it
    /// does *not* count toward [`TripleStore::rows_scanned`], unlike
    /// [`TripleStore::scan`].
    pub fn triples_spo(&self) -> impl Iterator<Item = (TermId, TermId, TermId)> + '_ {
        self.spo
            .iter()
            .map(|&(s, p, o)| (TermId(s), TermId(p), TermId(o)))
    }

    /// Matches a triple pattern with optionally-bound positions, invoking
    /// `f` for each matching triple. Returns early (with `false`) if `f`
    /// returns `false`; returns `true` if the scan ran to completion.
    pub fn scan(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
        f: impl FnMut(Triple) -> bool,
    ) -> bool {
        const MAX: u32 = u32::MAX;
        // Every triple that reaches the caller is one unit of store work;
        // count it before delegating so all eight access paths share the
        // same accounting.
        let mut inner = f;
        let mut f = |t: Triple| {
            self.rows_scanned.fetch_add(1, Ordering::Relaxed);
            inner(t)
        };
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => {
                if self.spo.contains(&(s.0, p.0, o.0)) {
                    f(Triple::new(s, p, o))
                } else {
                    true
                }
            }
            (Some(s), Some(p), None) => {
                for &(a, b, c) in self.spo.range((s.0, p.0, 0)..=(s.0, p.0, MAX)) {
                    if !f(Triple::new(TermId(a), TermId(b), TermId(c))) {
                        return false;
                    }
                }
                true
            }
            (Some(s), None, None) => {
                for &(a, b, c) in self.spo.range((s.0, 0, 0)..=(s.0, MAX, MAX)) {
                    if !f(Triple::new(TermId(a), TermId(b), TermId(c))) {
                        return false;
                    }
                }
                true
            }
            (None, Some(p), Some(o)) => {
                for &(b, c, a) in self.pos.range((p.0, o.0, 0)..=(p.0, o.0, MAX)) {
                    if !f(Triple::new(TermId(a), TermId(b), TermId(c))) {
                        return false;
                    }
                }
                true
            }
            (None, Some(p), None) => {
                for &(b, c, a) in self.pos.range((p.0, 0, 0)..=(p.0, MAX, MAX)) {
                    if !f(Triple::new(TermId(a), TermId(b), TermId(c))) {
                        return false;
                    }
                }
                true
            }
            (None, None, Some(o)) => {
                for &(c, a, b) in self.osp.range((o.0, 0, 0)..=(o.0, MAX, MAX)) {
                    if !f(Triple::new(TermId(a), TermId(b), TermId(c))) {
                        return false;
                    }
                }
                true
            }
            (Some(s), None, Some(o)) => {
                // OSP gives all triples with object o; filter by subject.
                for &(c, a, b) in self.osp.range((o.0, s.0, 0)..=(o.0, s.0, MAX)) {
                    if !f(Triple::new(TermId(a), TermId(b), TermId(c))) {
                        return false;
                    }
                }
                true
            }
            (None, None, None) => {
                for &(a, b, c) in self.spo.iter() {
                    if !f(Triple::new(TermId(a), TermId(b), TermId(c))) {
                        return false;
                    }
                }
                true
            }
        }
    }

    /// Collects all matches of a pattern into a vector (convenience for
    /// tests and small scans).
    pub fn matches(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> Vec<Triple> {
        let mut out = Vec::new();
        self.scan(s, p, o, |t| {
            out.push(t);
            true
        });
        out
    }

    /// Estimated number of matches for a pattern, used by the BGP join
    /// orderer. Exact for (p)-bound patterns (from stats), for the
    /// fully-bound probe, and for the all-free scan; for every other
    /// shape the matching index range is counted directly, capped at
    /// [`ESTIMATE_CAP`] so estimation never degenerates into a full scan.
    pub fn estimate(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> u64 {
        const MAX: u32 = u32::MAX;
        let cap = ESTIMATE_CAP as usize;
        match (s, p, o) {
            (Some(s), Some(p), Some(o)) => u64::from(self.spo.contains(&(s.0, p.0, o.0))),
            (Some(s), Some(p), None) => self
                .spo
                .range((s.0, p.0, 0)..=(s.0, p.0, MAX))
                .take(cap)
                .count() as u64,
            (Some(s), None, Some(o)) => self
                .osp
                .range((o.0, s.0, 0)..=(o.0, s.0, MAX))
                .take(cap)
                .count() as u64,
            (None, Some(p), Some(o)) => self
                .pos
                .range((p.0, o.0, 0)..=(p.0, o.0, MAX))
                .take(cap)
                .count() as u64,
            (Some(s), None, None) => self
                .spo
                .range((s.0, 0, 0)..=(s.0, MAX, MAX))
                .take(cap)
                .count() as u64,
            (None, Some(p), None) => self.pred_stats.get(&p).map_or(0, |st| st.triples),
            (None, None, Some(o)) => self
                .osp
                .range((o.0, 0, 0)..=(o.0, MAX, MAX))
                .take(cap)
                .count() as u64,
            (None, None, None) => self.len() as u64,
        }
    }
}

impl crate::backend::StorageBackend for TripleStore {
    fn kind(&self) -> crate::backend::BackendKind {
        crate::backend::BackendKind::Btree
    }

    fn dict(&self) -> &Arc<Dictionary> {
        self.dict()
    }

    fn len(&self) -> usize {
        self.len()
    }

    fn contains(&self, t: Triple) -> bool {
        self.contains(t)
    }

    fn scan_with(
        &self,
        s: Option<TermId>,
        p: Option<TermId>,
        o: Option<TermId>,
        f: &mut dyn FnMut(Triple) -> bool,
    ) -> bool {
        self.scan(s, p, o, f)
    }

    fn estimate(&self, s: Option<TermId>, p: Option<TermId>, o: Option<TermId>) -> u64 {
        self.estimate(s, p, o)
    }

    fn predicate_stats(&self, p: TermId) -> Option<PredicateStats> {
        self.predicate_stats(p)
    }

    fn predicates(&self) -> Vec<(TermId, PredicateStats)> {
        self.predicates().collect()
    }

    fn distinct_subjects(&self, p: TermId) -> u64 {
        self.distinct_subjects(p)
    }

    fn distinct_objects(&self, p: TermId) -> u64 {
        self.distinct_objects(p)
    }

    fn for_each_spo(&self, f: &mut dyn FnMut(TermId, TermId, TermId)) {
        for (s, p, o) in self.triples_spo() {
            f(s, p, o);
        }
    }

    fn rows_scanned(&self) -> u64 {
        self.rows_scanned()
    }

    fn reorder_enabled(&self) -> bool {
        self.reorder_enabled()
    }

    fn set_reorder(&self, on: bool) {
        self.set_reorder(on)
    }

    fn resident_bytes(&self) -> u64 {
        // Coarse model, not a measurement: each of the three `BTreeSet`
        // indexes holds one 12-byte key per triple in nodes that are
        // ~2/3 full with per-node headers, which lands near 20 bytes per
        // key in practice. The bench harness measures the real allocator
        // delta; this figure only feeds display lines.
        self.len() as u64 * 3 * 20
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn store_with(triples: &[(&str, &str, &str)]) -> TripleStore {
        let dict = Dictionary::shared();
        let mut st = TripleStore::new(dict);
        for (s, p, o) in triples {
            st.insert_terms(&Term::iri(*s), &Term::iri(*p), &Term::iri(*o));
        }
        st
    }

    #[test]
    fn insert_is_idempotent() {
        let mut st = store_with(&[("s", "p", "o")]);
        assert_eq!(st.len(), 1);
        let t = st.matches(None, None, None)[0];
        assert!(!st.insert(t));
        assert_eq!(st.len(), 1);
        assert_eq!(st.predicate_stats(t.p), Some(PredicateStats { triples: 1 }));
    }

    #[test]
    fn all_access_paths_agree() {
        let st = store_with(&[
            ("s1", "p1", "o1"),
            ("s1", "p1", "o2"),
            ("s1", "p2", "o1"),
            ("s2", "p1", "o1"),
        ]);
        let d = st.dict();
        let s1 = d.lookup(&Term::iri("s1")).unwrap();
        let p1 = d.lookup(&Term::iri("p1")).unwrap();
        let o1 = d.lookup(&Term::iri("o1")).unwrap();

        assert_eq!(st.matches(Some(s1), None, None).len(), 3);
        assert_eq!(st.matches(None, Some(p1), None).len(), 3);
        assert_eq!(st.matches(None, None, Some(o1)).len(), 3);
        assert_eq!(st.matches(Some(s1), Some(p1), None).len(), 2);
        assert_eq!(st.matches(None, Some(p1), Some(o1)).len(), 2);
        assert_eq!(st.matches(Some(s1), None, Some(o1)).len(), 2);
        assert_eq!(st.matches(Some(s1), Some(p1), Some(o1)).len(), 1);
        assert_eq!(st.matches(None, None, None).len(), 4);
    }

    #[test]
    fn scan_early_exit() {
        let st = store_with(&[("s1", "p", "o1"), ("s2", "p", "o2"), ("s3", "p", "o3")]);
        let mut seen = 0;
        let completed = st.scan(None, None, None, |_| {
            seen += 1;
            seen < 2
        });
        assert!(!completed);
        assert_eq!(seen, 2);
    }

    #[test]
    fn distinct_subject_object_counts() {
        let st = store_with(&[("s1", "p", "o1"), ("s1", "p", "o2"), ("s2", "p", "o2")]);
        let p = st.dict().lookup(&Term::iri("p")).unwrap();
        assert_eq!(st.distinct_subjects(p), 2);
        assert_eq!(st.distinct_objects(p), 2);
    }

    #[test]
    fn estimate_uses_predicate_stats() {
        let st = store_with(&[("a", "p", "b"), ("c", "p", "d"), ("e", "q", "f")]);
        let p = st.dict().lookup(&Term::iri("p")).unwrap();
        let q = st.dict().lookup(&Term::iri("q")).unwrap();
        assert_eq!(st.estimate(None, Some(p), None), 2);
        assert_eq!(st.estimate(None, Some(q), None), 1);
        assert_eq!(st.estimate(None, None, None), 3);
    }

    #[test]
    fn estimate_counts_index_ranges_exactly_when_small() {
        let st = store_with(&[
            ("s1", "p1", "o1"),
            ("s1", "p1", "o2"),
            ("s1", "p2", "o1"),
            ("s2", "p1", "o1"),
        ]);
        let d = st.dict();
        let s1 = d.lookup(&Term::iri("s1")).unwrap();
        let s2 = d.lookup(&Term::iri("s2")).unwrap();
        let p1 = d.lookup(&Term::iri("p1")).unwrap();
        let p2 = d.lookup(&Term::iri("p2")).unwrap();
        let o1 = d.lookup(&Term::iri("o1")).unwrap();
        assert_eq!(st.estimate(Some(s1), Some(p1), None), 2);
        assert_eq!(st.estimate(Some(s1), None, None), 3);
        assert_eq!(st.estimate(None, Some(p1), Some(o1)), 2);
        assert_eq!(st.estimate(None, None, Some(o1)), 3);
        assert_eq!(st.estimate(Some(s1), None, Some(o1)), 2);
        assert_eq!(st.estimate(Some(s1), Some(p1), Some(o1)), 1);
        // Absent combinations estimate zero, letting the planner
        // short-circuit an empty pattern first.
        assert_eq!(st.estimate(Some(s2), Some(p2), Some(o1)), 0);
        assert_eq!(st.estimate(Some(s2), Some(p2), None), 0);
    }

    #[test]
    fn rows_scanned_counts_visited_triples() {
        let st = store_with(&[("s1", "p", "o1"), ("s2", "p", "o2"), ("s3", "p", "o3")]);
        assert_eq!(st.rows_scanned(), 0);
        st.matches(None, None, None);
        assert_eq!(st.rows_scanned(), 3);
        let p = st.dict().lookup(&Term::iri("p")).unwrap();
        st.matches(None, Some(p), None);
        assert_eq!(st.rows_scanned(), 6);
        // Early-exiting scans only count what they actually visited.
        st.scan(None, None, None, |_| false);
        assert_eq!(st.rows_scanned(), 7);
        // Estimation probes are planning work, not scan work.
        st.estimate(None, Some(p), None);
        assert_eq!(st.rows_scanned(), 7);
    }

    #[test]
    fn reorder_flag_defaults_on_and_toggles_through_shared_ref() {
        let st = store_with(&[("s", "p", "o")]);
        assert!(st.reorder_enabled());
        st.set_reorder(false);
        assert!(!st.reorder_enabled());
        st.set_reorder(true);
        assert!(st.reorder_enabled());
    }
}
