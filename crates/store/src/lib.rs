//! An in-memory, dictionary-encoded RDF triple store with a SPARQL
//! evaluator.
//!
//! Each decentralized endpoint in the federation is backed by one
//! [`StorageBackend`]: either the mutable [`TripleStore`] — three
//! orderings of its triples (SPO, POS, OSP) so that any triple-pattern
//! access path is a contiguous range scan, mirroring the index layout of
//! engines like RDF-3X — or the immutable bit-packed [`ColumnStore`]
//! built once from sorted triples (see [`columns`]). Per-predicate
//! statistics are maintained on insert (BTree) or fall out of the sorted
//! runs (columnar); they back both the endpoints' own query planning and
//! the VOID-style descriptions used by the SPLENDID baseline.
//!
//! The [`eval`] module implements the SPARQL subset from
//! [`lusail_sparql`]: BGPs (index nested-loop joins with greedy
//! selectivity ordering), FILTER (including NOT EXISTS), OPTIONAL, UNION,
//! VALUES, DISTINCT and LIMIT — generic over `&dyn StorageBackend`.

pub mod backend;
pub mod columns;
pub mod eval;
pub mod expr;
pub mod stats;
pub mod store;

pub use backend::{BackendKind, StorageBackend};
pub use columns::ColumnStore;
pub use stats::{CharacteristicSet, EndpointStats, PredicateSummary};
pub use store::{PredicateStats, TripleStore, ESTIMATE_CAP};
