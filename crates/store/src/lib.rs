//! An in-memory, dictionary-encoded RDF triple store with a SPARQL
//! evaluator.
//!
//! Each decentralized endpoint in the federation is backed by one
//! [`TripleStore`]. The store keeps three orderings of its triples —
//! SPO, POS, and OSP — so that any triple-pattern access path is a
//! contiguous range scan, mirroring the index layout of engines like
//! RDF-3X. Per-predicate statistics are maintained on insert; they back
//! both the endpoints' own query planning and the VOID-style descriptions
//! used by the SPLENDID baseline.
//!
//! The [`eval`] module implements the SPARQL subset from
//! [`lusail_sparql`]: BGPs (index nested-loop joins with greedy
//! selectivity ordering), FILTER (including NOT EXISTS), OPTIONAL, UNION,
//! VALUES, DISTINCT and LIMIT.

pub mod eval;
pub mod expr;
pub mod stats;
pub mod store;

pub use stats::{CharacteristicSet, EndpointStats, PredicateSummary};
pub use store::{PredicateStats, TripleStore};
