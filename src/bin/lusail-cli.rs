//! `lusail-cli` — query decentralized RDF graphs from the command line.
//!
//! Subcommands:
//!
//! * `generate --workload lubm|qfed|lrb|bio2rdf --out DIR [--size N]` —
//!   write a benchmark federation to disk, one N-Triples file per
//!   endpoint, plus a `queries/` directory with the benchmark queries.
//! * `query --endpoint FILE.nt ... (--query 'SPARQL' | --query-file F)
//!   [--replica NAME=FILE.nt ...] [--kill NAME[:N] ...]
//!   [--engine lusail|fedx] [--threads N] [--backend btree|columns]
//!   [--explain-analyze [--fixed-clock]]` — run a
//!   federated query over the given endpoint files and print the results
//!   as a table. `--threads N` sets the worker budget for dispatching
//!   per-endpoint subqueries and partitioned joins (default 1 —
//!   sequential; any budget returns byte-identical results). `--replica NAME=FILE.nt` registers FILE.nt as a replica
//!   of the endpoint named NAME (same partition, failover target);
//!   `--kill NAME` makes the named endpoint permanently unavailable and
//!   `--kill NAME:N` kills it after serving N requests — a primary dying
//!   mid-query. With `--explain-analyze` the query still runs in full,
//!   but the structured trace is rendered instead of the rows: per-kind
//!   request/attempt counts, decomposition, per-subquery delay decisions
//!   with their Chauvenet reasons, VALUES traffic, join steps, circuit /
//!   failover / hedge activity, and phase timings. `--fixed-clock` runs
//!   against a manual test clock so the report is byte-stable (all
//!   durations render as 0ns).
//! * `explain --endpoint FILE.nt ... (--query 'SPARQL' | --query-file F)`
//!   — print Lusail's compile-time plan: sources, global join variables,
//!   subqueries and delay decisions.
//! * `stats --endpoint FILE.nt ... --out DIR` — the offline statistics
//!   build: summarize each endpoint file into characteristic sets and
//!   per-predicate cardinalities, written as `DIR/<name>.stats` in the
//!   `lusail-stats/v1` text format.
//! * `demo` — the paper's two-university running example, end to end.
//!
//! `query` and `explain` also accept `--backend btree|columns` to pick
//! the storage backend the loaded endpoint files are materialized on:
//! `btree` (the default) keeps the three mutable BTree indexes, while
//! `columns` freezes each endpoint into the compressed sorted-column
//! store. Results are byte-identical either way; the load report prints
//! one `storage:` line with the backend and total resident bytes so the
//! footprint difference is visible.
//!
//! `query` and `explain` also accept `--stats build|DIR`: `build`
//! summarizes every endpoint in-process at load time, `DIR` loads the
//! files a prior `stats` run wrote. With statistics attached, Lusail
//! answers conclusive ASK/COUNT/check probes locally instead of crossing
//! the wire — results are identical, request counts drop.
//!
//! Each `--endpoint` file becomes one SPARQL endpoint named after the
//! file stem.

use lusail_baselines::FedX;
use lusail_benchdata::{bio2rdf, lrb, lubm, qfed, Workload};
use lusail_endpoint::{
    ExecOptions, FaultProfile, FederatedEngine, Federation, LocalEndpoint, ManualClock,
    SparqlEndpoint,
};
use lusail_rdf::{ntriples, Dictionary};
use lusail_repro::lusail::{Lusail, LusailConfig};
use lusail_sparql::{parse_query, SolutionSet};
use lusail_store::TripleStore;
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let result = match args.first().map(String::as_str) {
        Some("generate") => cmd_generate(&args[1..]),
        Some("query") => cmd_query(&args[1..], false),
        Some("explain") => cmd_query(&args[1..], true),
        Some("stats") => cmd_stats(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("demo") => cmd_demo(),
        _ => {
            eprintln!(
                "usage: lusail-cli <generate|query|explain|stats|serve|demo> [options]\n\
                 \n\
                 generate --workload lubm|qfed|lrb|bio2rdf --out DIR [--size N]\n\
                 query    --endpoint F.nt ... (--query SPARQL | --query-file F) [--engine lusail|fedx]\n\
                 \x20        [--replica NAME=F.nt ...] [--kill NAME[:N] ...] [--threads N]\n\
                 \x20        [--backend btree|columns] [--stats build|DIR]\n\
                 \x20        [--explain-analyze [--fixed-clock]]\n\
                 explain  --endpoint F.nt ... (--query SPARQL | --query-file F)\n\
                 \x20        [--backend btree|columns] [--stats build|DIR]\n\
                 stats    --endpoint F.nt ... --out DIR\n\
                 serve    --endpoint F.nt ... [--port N] [--max-in-flight N] [--threads N]\n\
                 \x20        [--tenant-quota N] [--deadline-ms N] [--cache-capacity N]\n\
                 \x20        [--batch-window-ms N [--batch-max N]]\n\
                 \x20        [--replica NAME=F.nt ...] [--kill NAME[:N] ...]\n\
                 \x20        [--backend btree|columns] [--stats build|DIR]\n\
                 demo"
            );
            return ExitCode::from(2);
        }
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

fn flag_value<'a>(args: &'a [String], name: &str) -> Option<&'a str> {
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
}

fn has_flag(args: &[String], name: &str) -> bool {
    args.iter().any(|a| a == name)
}

fn flag_values<'a>(args: &'a [String], name: &str) -> Vec<&'a str> {
    let mut out = Vec::new();
    let mut i = 0;
    while i + 1 < args.len() {
        if args[i] == name {
            out.push(args[i + 1].as_str());
            i += 2;
        } else {
            i += 1;
        }
    }
    out
}

fn cmd_generate(args: &[String]) -> Result<(), String> {
    let workload = flag_value(args, "--workload").ok_or("missing --workload")?;
    let out = PathBuf::from(flag_value(args, "--out").ok_or("missing --out")?);
    let size: usize = flag_value(args, "--size")
        .map(|s| s.parse().map_err(|_| "bad --size"))
        .transpose()?
        .unwrap_or(4);

    let w: Workload = match workload {
        "lubm" => lubm::generate(&lubm::LubmConfig::new(size)),
        "qfed" => qfed::generate(&qfed::QfedConfig::default()),
        "lrb" => lrb::generate(&lrb::LrbConfig {
            scale: size as f64 / 4.0,
            ..Default::default()
        }),
        "bio2rdf" => bio2rdf::generate(&bio2rdf::Bio2RdfConfig::default()),
        other => return Err(format!("unknown workload {other}")),
    };
    std::fs::create_dir_all(out.join("queries")).map_err(|e| e.to_string())?;
    for ep in &w.endpoints {
        let mut triples = Vec::with_capacity(ep.triple_count());
        ep.store().scan(None, None, None, |t| {
            triples.push(t);
            true
        });
        let text = ntriples::serialize(&triples, &w.dict);
        let fname = format!("{}.nt", ep.name().replace([' ', '/'], "_"));
        std::fs::write(out.join(&fname), text).map_err(|e| e.to_string())?;
        println!(
            "wrote {} ({} triples)",
            out.join(&fname).display(),
            ep.triple_count()
        );
    }
    for nq in &w.queries {
        let path = out.join("queries").join(format!("{}.rq", nq.name));
        std::fs::write(&path, &nq.text).map_err(|e| e.to_string())?;
    }
    println!(
        "wrote {} queries under {}",
        w.queries.len(),
        out.join("queries").display()
    );
    Ok(())
}

/// Parses one `--kill` spec: `NAME` (permanently unavailable) or
/// `NAME:N` (dies after serving N requests).
fn parse_kill(spec: &str) -> Result<(String, FaultProfile), String> {
    match spec.rsplit_once(':') {
        Some((name, n)) => {
            let n: u64 = n
                .parse()
                .map_err(|_| format!("bad --kill spec {spec:?} (want NAME or NAME:N)"))?;
            Ok((name.to_string(), FaultProfile::dies_after(n)))
        }
        None => Ok((spec.to_string(), FaultProfile::dead())),
    }
}

/// Applies every `--kill` spec matching the endpoint that was just
/// added to the builder (the fault wrapper attaches to the most recent
/// entry), marking matched specs as used.
fn apply_kills(
    builder: lusail_endpoint::FederationBuilder,
    name: &str,
    kill_specs: &mut [(String, FaultProfile, bool)],
) -> lusail_endpoint::FederationBuilder {
    let mut builder = builder;
    for (kill_name, profile, used) in kill_specs.iter_mut() {
        if kill_name == name {
            *used = true;
            builder = builder.faults(*profile);
            println!("killing endpoint {name}");
        }
    }
    builder
}

fn load_federation(
    paths: &[&str],
    replicas: &[&str],
    kills: &[&str],
    stats_mode: Option<&str>,
    backend: lusail_store::BackendKind,
) -> Result<(Federation, Arc<Dictionary>), String> {
    if paths.is_empty() {
        return Err("at least one --endpoint file is required".into());
    }
    let mut kill_specs: Vec<(String, FaultProfile, bool)> = kills
        .iter()
        .map(|spec| parse_kill(spec).map(|(name, profile)| (name, profile, false)))
        .collect::<Result<_, _>>()?;

    let dict = Dictionary::shared();
    let load = |p: &str| -> Result<(String, TripleStore), String> {
        let path = Path::new(p);
        let text = std::fs::read_to_string(path).map_err(|e| format!("{p}: {e}"))?;
        let triples = ntriples::parse_document(&text, &dict).map_err(|e| format!("{p}: {e}"))?;
        let mut store = TripleStore::new(Arc::clone(&dict));
        store.extend(triples);
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| p.to_string());
        Ok((name, store))
    };
    let mut builder = Federation::builder(Arc::clone(&dict)).backend(backend);
    let mut primary_names = Vec::new();
    // In `--stats build` mode the summaries come straight from the loaded
    // stores (before they move into the builder); in `--stats DIR` mode
    // they are read back from a prior `lusail-cli stats` run below.
    let mut built_stats: Vec<(String, lusail_store::EndpointStats)> = Vec::new();
    for p in paths {
        let (name, store) = load(p)?;
        println!("loaded endpoint {name}: {} triples", store.len());
        if stats_mode == Some("build") {
            built_stats.push((name.clone(), lusail_store::EndpointStats::build(&store)));
        }
        builder = apply_kills(builder.endpoint(&name, store), &name, &mut kill_specs);
        primary_names.push(name);
    }
    for spec in replicas {
        let (primary, file) = spec
            .split_once('=')
            .ok_or_else(|| format!("bad --replica spec {spec:?} (want NAME=FILE.nt)"))?;
        if !primary_names.iter().any(|n| n == primary) {
            return Err(format!("--replica {spec:?}: no endpoint named {primary:?}"));
        }
        let (name, store) = load(file)?;
        println!(
            "loaded replica {name} of {primary}: {} triples",
            store.len()
        );
        builder = apply_kills(
            builder.endpoint(&name, store).replica_of(primary),
            &name,
            &mut kill_specs,
        );
    }
    if let Some((name, _, _)) = kill_specs.iter().find(|(_, _, used)| !used) {
        return Err(format!("--kill {name:?}: no endpoint with that name"));
    }
    let fed = builder.build();
    let resident: u64 = fed.iter().filter_map(|(_, ep)| ep.resident_bytes()).sum();
    let n_endpoints = fed.iter().count();
    println!(
        "storage: backend {backend}, {resident} B resident across \
         {n_endpoints} endpoint(s)"
    );
    match stats_mode {
        None => {}
        Some("build") => {
            for (name, stats) in built_stats {
                let sets = stats.sets.len();
                let (id, _) = fed.endpoint_by_name(&name).expect("endpoint just added");
                fed.attach_stats(id, Arc::new(stats));
                println!("built statistics for {name}: {sets} characteristic set(s)");
            }
        }
        Some(dir) => {
            let mut attached = 0usize;
            for name in &primary_names {
                let path = Path::new(dir).join(format!("{name}.stats"));
                let Ok(text) = std::fs::read_to_string(&path) else {
                    println!("no statistics for {name} ({} not found)", path.display());
                    continue;
                };
                let stats = lusail_store::EndpointStats::from_text(&text, &dict)
                    .map_err(|e| format!("{}: {e}", path.display()))?;
                let sets = stats.sets.len();
                let (id, _) = fed.endpoint_by_name(name).expect("endpoint just added");
                fed.attach_stats(id, Arc::new(stats));
                println!("loaded statistics for {name}: {sets} characteristic set(s)");
                attached += 1;
            }
            if attached == 0 {
                return Err(format!(
                    "--stats {dir}: no .stats file matched any endpoint"
                ));
            }
        }
    }
    Ok((fed, dict))
}

/// The offline statistics build: one `.stats` file per endpoint file,
/// in the `lusail-stats/v1` text format `--stats DIR` loads back.
fn cmd_stats(args: &[String]) -> Result<(), String> {
    let endpoints = flag_values(args, "--endpoint");
    if endpoints.is_empty() {
        return Err("at least one --endpoint file is required".into());
    }
    let out = PathBuf::from(flag_value(args, "--out").ok_or("missing --out")?);
    std::fs::create_dir_all(&out).map_err(|e| e.to_string())?;
    let dict = Dictionary::shared();
    for p in endpoints {
        let path = Path::new(p);
        let text = std::fs::read_to_string(path).map_err(|e| format!("{p}: {e}"))?;
        let triples = ntriples::parse_document(&text, &dict).map_err(|e| format!("{p}: {e}"))?;
        let mut store = TripleStore::new(Arc::clone(&dict));
        store.extend(triples);
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| p.to_string());
        let stats = lusail_store::EndpointStats::build(&store);
        let rendered = stats.to_text(&dict)?;
        let target = out.join(format!("{name}.stats"));
        std::fs::write(&target, rendered).map_err(|e| e.to_string())?;
        println!(
            "wrote {} ({} characteristic set(s), {} predicate(s))",
            target.display(),
            stats.sets.len(),
            stats.predicates.len()
        );
    }
    Ok(())
}

fn read_query(args: &[String], dict: &Dictionary) -> Result<lusail_sparql::Query, String> {
    let text = match (
        flag_value(args, "--query"),
        flag_value(args, "--query-file"),
    ) {
        (Some(q), _) => q.to_string(),
        (None, Some(f)) => std::fs::read_to_string(f).map_err(|e| format!("{f}: {e}"))?,
        (None, None) => return Err("missing --query or --query-file".into()),
    };
    parse_query(&text, dict).map_err(|e| e.to_string())
}

fn cmd_query(args: &[String], explain_only: bool) -> Result<(), String> {
    let endpoints = flag_values(args, "--endpoint");
    let replicas = flag_values(args, "--replica");
    let kills = flag_values(args, "--kill");
    let stats_mode = flag_value(args, "--stats");
    let backend = match flag_value(args, "--backend") {
        None => lusail_store::BackendKind::Btree,
        Some(name) => lusail_store::BackendKind::parse(name)
            .ok_or_else(|| format!("unknown backend {name} (use btree|columns)"))?,
    };
    let (fed, dict) = load_federation(&endpoints, &replicas, &kills, stats_mode, backend)?;
    let query = read_query(args, &dict)?;

    if explain_only {
        let engine = Lusail::new(LusailConfig::default());
        let plan = engine.explain(&fed, &query);
        println!("\n{}", plan.render());
        return Ok(());
    }

    let engine_name = flag_value(args, "--engine").unwrap_or("lusail");
    let threads: usize = flag_value(args, "--threads")
        .map(|s| {
            s.parse()
                .map_err(|_| "bad --threads (want a positive integer)")
        })
        .transpose()?
        .unwrap_or(1);
    let exec = ExecOptions::default().with_threads(threads);
    if has_flag(args, "--explain-analyze") {
        if engine_name != "lusail" {
            return Err("--explain-analyze is only available for the lusail engine".into());
        }
        let mut engine = Lusail::new(LusailConfig::default());
        if has_flag(args, "--fixed-clock") {
            engine = engine.with_clock(ManualClock::new());
        }
        let report = engine
            .explain_analyze_with(&fed, &query, &exec)
            .map_err(|e| e.to_string())?;
        println!("\n{report}");
        return Ok(());
    }
    let engine: Box<dyn FederatedEngine> = match engine_name {
        "lusail" => Box::new(Lusail::default()),
        "fedx" => Box::new(FedX::default()),
        other => return Err(format!("unknown engine {other} (use lusail|fedx)")),
    };
    let before = fed.stats_snapshot();
    let start = std::time::Instant::now();
    let outcome = engine
        .run_with(&fed, &query, &exec)
        .map_err(|e| e.to_string())?;
    let elapsed = start.elapsed();
    let window = fed.stats_snapshot().since(&before);
    print_solutions(&outcome.solutions, &dict);
    println!(
        "\n{} rows in {:.1} ms — {} remote requests, {} result rows \
         fetched from endpoints, {} store rows scanned",
        outcome.solutions.len(),
        elapsed.as_secs_f64() * 1e3,
        window.total_requests(),
        window.rows_returned,
        window.rows_scanned
    );
    report_failures(&outcome);
    Ok(())
}

/// `lusail-cli serve`: a long-lived multi-tenant SPARQL-over-HTTP
/// service over the loaded federation. Runs until SIGTERM/SIGINT, then
/// drains gracefully (in-flight queries finish or hit their deadlines;
/// new admissions are refused with typed 503/504 responses).
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let endpoints = flag_values(args, "--endpoint");
    let replicas = flag_values(args, "--replica");
    let kills = flag_values(args, "--kill");
    let stats_mode = flag_value(args, "--stats");
    let backend = match flag_value(args, "--backend") {
        None => lusail_store::BackendKind::Btree,
        Some(name) => lusail_store::BackendKind::parse(name)
            .ok_or_else(|| format!("unknown backend {name} (use btree|columns)"))?,
    };
    let parse_num = |name: &str, default: usize| -> Result<usize, String> {
        flag_value(args, name)
            .map(|s| {
                s.parse()
                    .map_err(|_| format!("bad {name} (want an integer)"))
            })
            .transpose()
            .map(|v| v.unwrap_or(default))
    };
    let port = parse_num("--port", 3030)? as u16;
    let max_in_flight = parse_num("--max-in-flight", 8)?;
    let threads = parse_num("--threads", 1)?;
    let tenant_quota = parse_num("--tenant-quota", 4)?;
    let deadline_ms = parse_num("--deadline-ms", 30_000)? as u64;
    let cache_capacity = flag_value(args, "--cache-capacity")
        .map(|s| s.parse::<usize>().map_err(|_| "bad --cache-capacity"))
        .transpose()?;
    // Cross-tenant MQO batching: `--batch-window-ms` turns it on and sets
    // the accumulation window; `--batch-max` sets the count trigger.
    let batch_window_ms = flag_value(args, "--batch-window-ms")
        .map(|s| s.parse::<u64>().map_err(|_| "bad --batch-window-ms"))
        .transpose()?;
    let batch_max = parse_num(
        "--batch-max",
        lusail_server::BatchConfig::default().max_batch,
    )?;

    let (fed, _dict) = load_federation(&endpoints, &replicas, &kills, stats_mode, backend)?;
    let engine = Lusail::new(LusailConfig {
        probe_cache_capacity: cache_capacity,
        ..LusailConfig::default()
    });
    let config = lusail_server::ServerConfig {
        max_in_flight,
        threads_per_query: threads,
        default_tenant: lusail_server::TenantPolicy {
            max_in_flight: tenant_quota,
            deadline_budget: std::time::Duration::from_millis(deadline_ms),
        },
        batch: lusail_server::BatchConfig {
            enabled: batch_window_ms.is_some(),
            window: std::time::Duration::from_millis(batch_window_ms.unwrap_or(2)),
            max_batch: batch_max,
        },
        ..Default::default()
    };
    let server = lusail_server::QueryServer::new(fed, engine, config);
    let listener = std::net::TcpListener::bind(("127.0.0.1", port))
        .map_err(|e| format!("bind 127.0.0.1:{port}: {e}"))?;
    let addr = listener.local_addr().map_err(|e| e.to_string())?;
    let shutdown = lusail_server::http::install_shutdown_flag();
    println!("serving on http://{addr}/sparql (SIGTERM to drain)");
    let report = lusail_server::http::run_http_loop(&server, listener, shutdown)
        .map_err(|e| e.to_string())?;
    let counters = server.counters();
    println!(
        "drained in {:.1} ms ({} abandoned) — {} admitted, {} rejected \
         ({} shed, {} deadline, {} draining), {} cache invalidations",
        report.waited.as_secs_f64() * 1e3,
        report.abandoned,
        counters.admitted,
        counters.total_rejected(),
        counters.shed,
        counters.deadline_rejected,
        counters.draining_rejected,
        counters.health_invalidations,
    );
    let batch = server.batch_stats();
    if batch.windows > 0 {
        println!(
            "batching: {} windows ({} queries, widest {}), {} shared subquery \
             hits saved {} wire requests",
            batch.windows,
            batch.batched_queries,
            batch.max_window,
            batch.shared_hits,
            batch.wire_requests_saved,
        );
    }
    if report.abandoned > 0 {
        return Err(format!(
            "{} queries still in flight past the drain bound",
            report.abandoned
        ));
    }
    Ok(())
}

/// Prints the per-endpoint failure report and the completeness warning.
fn report_failures(outcome: &lusail_endpoint::QueryOutcome) {
    for f in &outcome.failures {
        println!(
            "endpoint {}: {} failed request(s), {} retr{}{}",
            f.name,
            f.failed_requests,
            f.retries,
            if f.retries == 1 { "y" } else { "ies" },
            if f.dead {
                " — circuit opened; replicas served its subqueries where available"
            } else {
                ""
            }
        );
    }
    if !outcome.complete {
        println!(
            "WARNING: the result is INCOMPLETE — data-bearing requests \
             failed after retries; rows from those endpoints are missing"
        );
    }
}

/// The result table, rendered by the same function the HTTP server
/// uses for `200` bodies — `lusail-cli serve` responses and single-shot
/// `lusail-cli query` tables diff byte-for-byte.
fn print_solutions(sols: &SolutionSet, dict: &Dictionary) {
    print!("{}", lusail_server::http::render_solutions(sols, dict));
}

fn cmd_demo() -> Result<(), String> {
    // A condensed version of examples/quickstart.rs.
    use lusail_rdf::Term;
    let dict = Dictionary::shared();
    let ub = |l: &str| Term::iri(format!("http://ub/{l}"));
    let e1 = |l: &str| Term::iri(format!("http://ep1/{l}"));
    let e2 = |l: &str| Term::iri(format!("http://ep2/{l}"));
    let mut ep1 = TripleStore::new(Arc::clone(&dict));
    for (s, p, o) in [
        (e1("Kim"), ub("advisor"), e1("Joy")),
        (e1("Kim"), ub("takesCourse"), e1("c1")),
        (e1("Joy"), ub("PhDDegreeFrom"), e1("CMU")),
        (e1("CMU"), ub("address"), Term::lit("CCCC")),
        (e1("MIT"), ub("address"), Term::lit("XXX")),
    ] {
        ep1.insert_terms(&s, &p, &o);
    }
    let mut ep2 = TripleStore::new(Arc::clone(&dict));
    for (s, p, o) in [
        (e2("Lee"), ub("advisor"), e2("Tim")),
        (e2("Lee"), ub("takesCourse"), e2("c3")),
        (e2("Tim"), ub("PhDDegreeFrom"), e1("MIT")),
    ] {
        ep2.insert_terms(&s, &p, &o);
    }
    let mut fed = Federation::new(Arc::clone(&dict));
    fed.add(Arc::new(LocalEndpoint::new("EP1", ep1)));
    fed.add(Arc::new(LocalEndpoint::new("EP2", ep2)));
    let q = parse_query(
        "PREFIX ub: <http://ub/> SELECT ?S ?P ?U ?A WHERE { \
         ?S ub:advisor ?P . ?S ub:takesCourse ?C . \
         ?P ub:PhDDegreeFrom ?U . ?U ub:address ?A }",
        &dict,
    )
    .map_err(|e| e.to_string())?;
    let engine = Lusail::default();
    println!("plan:\n{}", engine.explain(&fed, &q).render());
    let result = engine.execute(&fed, &q).map_err(|e| e.to_string())?;
    print_solutions(&result.solutions, &dict);
    println!(
        "\n{} rows; GJVs {:?}; {} subqueries; {} remote requests; complete: {}",
        result.solutions.len(),
        result.metrics.gjvs,
        result.metrics.subqueries,
        result.metrics.total_requests(),
        result.complete
    );
    Ok(())
}
