//! Umbrella crate for the Lusail reproduction: re-exports the public API
//! of every workspace crate so examples and downstream users can depend
//! on one crate.
//!
//! * [`rdf`] — terms, dictionary, triples, N-Triples I/O.
//! * [`sparql`] — the SPARQL subset: parser, AST, writer, solution sets.
//! * [`store`] — the in-memory triple store and local evaluator.
//! * [`endpoint`] — SPARQL endpoints, simulated networks, federations.
//! * [`lusail`] — the Lusail engine (LADE + SAPE).
//! * [`baselines`] — FedX-, SPLENDID-, and HiBISCuS-style engines.
//! * [`benchdata`] — deterministic benchmark workload generators.

pub use lusail_baselines as baselines;
pub use lusail_benchdata as benchdata;
pub use lusail_core as lusail;
pub use lusail_endpoint as endpoint;
pub use lusail_rdf as rdf;
pub use lusail_sparql as sparql;
pub use lusail_store as store;
