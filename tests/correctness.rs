//! Cross-engine correctness: every federated engine must return exactly
//! the solutions of evaluating the query centrally over the union of all
//! endpoint graphs (the oracle), for every benchmark workload.
//!
//! This is the load-bearing guarantee behind the paper's §IV-C "Result
//! Completeness" argument: locality-aware decomposition must never miss
//! rows that require traversing an interlink.

use lusail_baselines::{FedX, HiBisCus, HibiscusIndex, Splendid, VoidIndex};
use lusail_benchdata::{bio2rdf, lrb, lubm, qfed, Workload};
use lusail_core::Lusail;
use lusail_endpoint::ExecOptions;
use lusail_endpoint::FederatedEngine;
use std::sync::Arc;

fn engines_for(w: &Workload) -> Vec<Arc<dyn FederatedEngine>> {
    vec![
        Arc::new(Lusail::default()),
        Arc::new(FedX::default()),
        Arc::new(HiBisCus::new(HibiscusIndex::build(&w.endpoint_refs()))),
        Arc::new(Splendid::new(VoidIndex::build(&w.endpoint_refs()))),
    ]
}

fn check_workload(w: &Workload) {
    let engines = engines_for(w);
    for nq in &w.queries {
        let expected = lusail_store::eval::evaluate(&w.oracle, &nq.query).canonicalize();
        for engine in &engines {
            let got = engine
                .run_with(&w.federation, &nq.query, &ExecOptions::default())
                .unwrap()
                .solutions
                .canonicalize();
            // LIMIT makes the result set nondeterministic (any k rows are
            // valid); check size, and containment in the *unlimited*
            // oracle result.
            if let Some(limit) = nq.query.limit {
                let mut unlimited_q = nq.query.clone();
                unlimited_q.limit = None;
                let unlimited =
                    lusail_store::eval::evaluate(&w.oracle, &unlimited_q).canonicalize();
                assert_eq!(
                    got.len(),
                    unlimited.len().min(limit),
                    "{} row count wrong on {}",
                    engine.engine_name(),
                    nq.name
                );
                for row in &got.rows {
                    assert!(
                        unlimited.rows.contains(row),
                        "{} produced a row not in the oracle for {}",
                        engine.engine_name(),
                        nq.name
                    );
                }
            } else {
                assert_eq!(
                    got,
                    expected,
                    "{} differs from oracle on {}",
                    engine.engine_name(),
                    nq.name
                );
            }
        }
    }
}

#[test]
fn lubm_all_engines_match_oracle() {
    check_workload(&lubm::generate(&lubm::LubmConfig::new(3)));
}

#[test]
fn lubm_two_endpoints_all_engines_match_oracle() {
    check_workload(&lubm::generate(&lubm::LubmConfig::new(2)));
}

#[test]
fn qfed_all_engines_match_oracle() {
    check_workload(&qfed::generate(&qfed::QfedConfig {
        drugs: 120,
        diseases: 40,
        ..Default::default()
    }));
}

#[test]
fn lrb_all_engines_match_oracle() {
    check_workload(&lrb::generate(&lrb::LrbConfig {
        scale: 0.4,
        ..Default::default()
    }));
}

#[test]
fn bio2rdf_all_engines_match_oracle() {
    check_workload(&bio2rdf::generate(&bio2rdf::Bio2RdfConfig {
        genes: 80,
        drugs: 60,
        ..Default::default()
    }));
}

#[test]
fn lusail_matches_oracle_with_every_delay_policy() {
    use lusail_core::{DelayPolicy, LusailConfig};
    let w = lubm::generate(&lubm::LubmConfig::new(3));
    for policy in [
        DelayPolicy::Mu,
        DelayPolicy::MuSigma,
        DelayPolicy::Mu2Sigma,
        DelayPolicy::OutliersOnly,
    ] {
        let engine = Lusail::new(LusailConfig {
            delay_policy: policy,
            ..Default::default()
        });
        for nq in &w.queries {
            let expected = lusail_store::eval::evaluate(&w.oracle, &nq.query).canonicalize();
            let got = engine
                .run_with(&w.federation, &nq.query, &ExecOptions::default())
                .unwrap()
                .solutions
                .canonicalize();
            assert_eq!(got, expected, "policy {policy:?} differs on {}", nq.name);
        }
    }
}

#[test]
fn lusail_matches_oracle_without_lade_and_without_cache() {
    use lusail_core::LusailConfig;
    let w = qfed::generate(&qfed::QfedConfig {
        drugs: 100,
        diseases: 30,
        ..Default::default()
    });
    for (disable_lade, use_cache) in [(true, true), (false, false), (true, false)] {
        let engine = Lusail::new(LusailConfig {
            disable_lade,
            use_cache,
            ..Default::default()
        });
        for nq in &w.queries {
            let expected = lusail_store::eval::evaluate(&w.oracle, &nq.query).canonicalize();
            let got = engine
                .run_with(&w.federation, &nq.query, &ExecOptions::default())
                .unwrap()
                .solutions
                .canonicalize();
            assert_eq!(
                got, expected,
                "disable_lade={disable_lade} use_cache={use_cache} differs on {}",
                nq.name
            );
        }
    }
}

#[test]
fn lusail_matches_oracle_with_tiny_blocks() {
    use lusail_core::LusailConfig;
    let w = lubm::generate(&lubm::LubmConfig::new(4));
    let engine = Lusail::new(LusailConfig {
        block_size: 3,
        ..Default::default()
    });
    for nq in &w.queries {
        let expected = lusail_store::eval::evaluate(&w.oracle, &nq.query).canonicalize();
        let got = engine
            .run_with(&w.federation, &nq.query, &ExecOptions::default())
            .unwrap()
            .solutions
            .canonicalize();
        assert_eq!(got, expected, "block_size=3 differs on {}", nq.name);
    }
}

#[test]
fn fedx_matches_oracle_with_tiny_blocks() {
    use lusail_baselines::FedXConfig;
    let w = lubm::generate(&lubm::LubmConfig::new(2));
    let engine = FedX::new(FedXConfig {
        block_size: 2,
        use_cache: true,
    });
    for nq in &w.queries {
        let expected = lusail_store::eval::evaluate(&w.oracle, &nq.query).canonicalize();
        let got = engine
            .run_with(&w.federation, &nq.query, &ExecOptions::default())
            .unwrap()
            .solutions
            .canonicalize();
        assert_eq!(got, expected, "fedx block_size=2 differs on {}", nq.name);
    }
}
