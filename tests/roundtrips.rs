//! Property tests for the serialization boundaries: N-Triples documents
//! (the CLI's on-disk format) and federated ORDER BY semantics.

use lusail_core::Lusail;
use lusail_endpoint::{FederatedEngine, Federation, LocalEndpoint};
use lusail_rdf::{ntriples, Dictionary, Term, Triple};
use lusail_sparql::parse_query;
use lusail_store::TripleStore;
use proptest::prelude::*;
use std::sync::Arc;

/// Arbitrary RDF terms spanning all kinds, including characters that need
/// escaping.
fn arb_term() -> impl Strategy<Value = Term> {
    prop_oneof![
        "[a-z]{1,8}".prop_map(|s| Term::iri(format!("http://x.org/{s}"))),
        // Literals with escapes, unicode, and tabs.
        "[ -~]{0,12}".prop_map(Term::lit),
        Just(Term::lit("quote\" back\\slash \n tab\t")),
        Just(Term::lit("ünïcødé ← →")),
        ("[a-z]{1,6}", "[a-z]{2}").prop_map(|(l, t)| Term::lang_lit(l, t)),
        (-1000i64..1000).prop_map(Term::int),
        "[a-z0-9]{1,6}".prop_map(Term::Blank),
    ]
}

fn arb_object() -> impl Strategy<Value = Term> {
    arb_term()
}

fn arb_subject() -> impl Strategy<Value = Term> {
    prop_oneof![
        "[a-z]{1,8}".prop_map(|s| Term::iri(format!("http://x.org/{s}"))),
        "[a-z0-9]{1,6}".prop_map(Term::Blank),
    ]
}

fn arb_predicate() -> impl Strategy<Value = Term> {
    "[a-z]{1,8}".prop_map(|s| Term::iri(format!("http://p.org/{s}")))
}

proptest! {
    /// serialize → parse is the identity on triple sets, for every term
    /// kind including escaped literals.
    #[test]
    fn ntriples_document_roundtrip(
        triples in proptest::collection::vec(
            (arb_subject(), arb_predicate(), arb_object()),
            0..40,
        )
    ) {
        let dict = Dictionary::shared();
        let encoded: Vec<Triple> = triples
            .iter()
            .map(|(s, p, o)| Triple::new(dict.encode(s), dict.encode(p), dict.encode(o)))
            .collect();
        let text = ntriples::serialize(&encoded, &dict);
        let reparsed = ntriples::parse_document(&text, &dict)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        let a: std::collections::BTreeSet<_> = encoded.into_iter().collect();
        let b: std::collections::BTreeSet<_> = reparsed.into_iter().collect();
        prop_assert_eq!(a, b);
    }

    /// Federated ORDER BY returns exactly the centralized ordering
    /// (by value, for integer keys) however the data is spread.
    #[test]
    fn federated_order_by_matches_centralized(
        values in proptest::collection::vec(-50i64..50, 1..25),
        endpoints in 1usize..4,
    ) {
        let dict = Dictionary::shared();
        let mut oracle = TripleStore::new(Arc::clone(&dict));
        let mut stores: Vec<TripleStore> =
            (0..endpoints).map(|_| TripleStore::new(Arc::clone(&dict))).collect();
        let p = Term::iri("http://x/value");
        for (i, v) in values.iter().enumerate() {
            let s = Term::iri(format!("http://x/e{i}"));
            oracle.insert_terms(&s, &p, &Term::int(*v));
            stores[i % endpoints].insert_terms(&s, &p, &Term::int(*v));
        }
        let mut fed = Federation::new(Arc::clone(&dict));
        for (i, st) in stores.into_iter().enumerate() {
            fed.add(Arc::new(LocalEndpoint::new(format!("ep{i}"), st)));
        }
        let q = parse_query(
            "SELECT ?v WHERE { ?s <http://x/value> ?v } ORDER BY ?v",
            &dict,
        ).unwrap();
        let sols = Lusail::default().run(&fed, &q);
        let got: Vec<i64> = (0..sols.len())
            .map(|i| dict.decode(sols.get(i, "v").unwrap()).lexical().parse().unwrap())
            .collect();
        let mut want = values.clone();
        want.sort_unstable();
        prop_assert_eq!(got, want);
    }

    /// SolutionSet::append over random shards then canonicalize equals the
    /// canonicalized whole (the concatenation path of the disjoint fast
    /// path).
    #[test]
    fn append_of_shards_equals_whole(
        rows in proptest::collection::vec(
            proptest::collection::vec(proptest::option::of(0u32..10), 2),
            0..30,
        ),
        cut in 0usize..30,
    ) {
        use lusail_sparql::SolutionSet;
        use lusail_rdf::TermId;
        let all = SolutionSet {
            vars: vec!["a".into(), "b".into()],
            rows: rows
                .iter()
                .map(|r| r.iter().map(|c| c.map(TermId)).collect())
                .collect(),
        };
        let cut = cut.min(all.rows.len());
        let mut left = SolutionSet {
            vars: all.vars.clone(),
            rows: all.rows[..cut].to_vec(),
        };
        let right = SolutionSet {
            vars: all.vars.clone(),
            rows: all.rows[cut..].to_vec(),
        };
        left.append(right);
        prop_assert_eq!(left.canonicalize(), all.canonicalize());
    }
}
