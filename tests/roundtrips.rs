//! Randomized-but-deterministic tests for the serialization boundaries:
//! N-Triples documents (the CLI's on-disk format) and federated ORDER BY
//! semantics. Each test drives a seeded SplitMix64 generator through a
//! fixed number of cases, so failures are reproducible from the case
//! index alone. The default per-test seeds can be overridden through
//! `LUSAIL_TEST_SEED` (decimal or `0x`-hex).

use lusail_benchdata::common::Rng;
use lusail_core::Lusail;
use lusail_endpoint::ExecOptions;
use lusail_endpoint::{FederatedEngine, Federation, LocalEndpoint};
use lusail_rdf::{ntriples, Dictionary, Term, Triple};
use lusail_sparql::parse_query;
use lusail_store::TripleStore;
use lusail_testkit::seed_from_env;
use std::sync::Arc;

fn rand_ascii(rng: &mut Rng, max_len: usize) -> String {
    let len = rng.below(max_len + 1);
    (0..len)
        .map(|_| (b' ' + rng.below((b'~' - b' ' + 1) as usize) as u8) as char)
        .collect()
}

fn rand_word(rng: &mut Rng, min_len: usize, max_len: usize) -> String {
    let len = min_len + rng.below(max_len - min_len + 1);
    (0..len)
        .map(|_| (b'a' + rng.below(26) as u8) as char)
        .collect()
}

/// Random RDF term spanning all kinds, including characters that need
/// escaping.
fn rand_object(rng: &mut Rng) -> Term {
    match rng.below(7) {
        0 => Term::iri(format!("http://x.org/{}", rand_word(rng, 1, 8))),
        // Literals with escapes, unicode, and tabs.
        1 => Term::lit(rand_ascii(rng, 12)),
        2 => Term::lit("quote\" back\\slash \n tab\t"),
        3 => Term::lit("ünïcødé ← →"),
        4 => Term::lang_lit(rand_word(rng, 1, 6), rand_word(rng, 2, 2)),
        5 => Term::int(rng.below(2000) as i64 - 1000),
        _ => Term::Blank(rand_word(rng, 1, 6)),
    }
}

fn rand_subject(rng: &mut Rng) -> Term {
    if rng.chance(0.5) {
        Term::iri(format!("http://x.org/{}", rand_word(rng, 1, 8)))
    } else {
        Term::Blank(rand_word(rng, 1, 6))
    }
}

fn rand_predicate(rng: &mut Rng) -> Term {
    Term::iri(format!("http://p.org/{}", rand_word(rng, 1, 8)))
}

/// serialize → parse is the identity on triple sets, for every term kind
/// including escaped literals.
#[test]
fn ntriples_document_roundtrip() {
    let mut rng = Rng::new(seed_from_env(0xD0C5));
    for case in 0..200 {
        let dict = Dictionary::shared();
        let n = rng.below(40);
        let encoded: Vec<Triple> = (0..n)
            .map(|_| {
                let (s, p, o) = (rand_subject(&mut rng), rand_predicate(&mut rng), {
                    rand_object(&mut rng)
                });
                Triple::new(dict.encode(&s), dict.encode(&p), dict.encode(&o))
            })
            .collect();
        let text = ntriples::serialize(&encoded, &dict);
        let reparsed = ntriples::parse_document(&text, &dict)
            .unwrap_or_else(|e| panic!("case {case}: reparse failed: {e}\n{text}"));
        let a: std::collections::BTreeSet<_> = encoded.into_iter().collect();
        let b: std::collections::BTreeSet<_> = reparsed.into_iter().collect();
        assert_eq!(a, b, "case {case}");
    }
}

/// Federated ORDER BY returns exactly the centralized ordering (by value,
/// for integer keys) however the data is spread.
#[test]
fn federated_order_by_matches_centralized() {
    let mut rng = Rng::new(seed_from_env(0x02DE2));
    for case in 0..60 {
        let values: Vec<i64> = (0..1 + rng.below(24))
            .map(|_| rng.below(100) as i64 - 50)
            .collect();
        let endpoints = 1 + rng.below(3);
        let dict = Dictionary::shared();
        let mut oracle = TripleStore::new(Arc::clone(&dict));
        let mut stores: Vec<TripleStore> = (0..endpoints)
            .map(|_| TripleStore::new(Arc::clone(&dict)))
            .collect();
        let p = Term::iri("http://x/value");
        for (i, v) in values.iter().enumerate() {
            let s = Term::iri(format!("http://x/e{i}"));
            oracle.insert_terms(&s, &p, &Term::int(*v));
            stores[i % endpoints].insert_terms(&s, &p, &Term::int(*v));
        }
        let mut fed = Federation::new(Arc::clone(&dict));
        for (i, st) in stores.into_iter().enumerate() {
            fed.add(Arc::new(LocalEndpoint::new(format!("ep{i}"), st)));
        }
        let q = parse_query(
            "SELECT ?v WHERE { ?s <http://x/value> ?v } ORDER BY ?v",
            &dict,
        )
        .unwrap();
        let sols = Lusail::default()
            .run_with(&fed, &q, &ExecOptions::default())
            .unwrap()
            .solutions;
        let got: Vec<i64> = (0..sols.len())
            .map(|i| {
                dict.decode(sols.get(i, "v").unwrap())
                    .lexical()
                    .parse()
                    .unwrap()
            })
            .collect();
        let mut want = values.clone();
        want.sort_unstable();
        assert_eq!(got, want, "case {case}");
    }
}

/// SolutionSet::append over random shards then canonicalize equals the
/// canonicalized whole (the concatenation path of the disjoint fast
/// path).
#[test]
fn append_of_shards_equals_whole() {
    use lusail_rdf::TermId;
    use lusail_sparql::SolutionSet;
    let mut rng = Rng::new(seed_from_env(0x5A2D5));
    for case in 0..200 {
        let n = rng.below(30);
        let rows: Vec<Vec<Option<TermId>>> = (0..n)
            .map(|_| {
                (0..2)
                    .map(|_| {
                        if rng.chance(0.2) {
                            None
                        } else {
                            Some(TermId(rng.below(10) as u32))
                        }
                    })
                    .collect()
            })
            .collect();
        let all = SolutionSet {
            vars: vec!["a".into(), "b".into()],
            rows,
        };
        let cut = rng.below(30).min(all.rows.len());
        let mut left = SolutionSet {
            vars: all.vars.clone(),
            rows: all.rows[..cut].to_vec(),
        };
        let right = SolutionSet {
            vars: all.vars.clone(),
            rows: all.rows[cut..].to_vec(),
        };
        left.append(right);
        assert_eq!(left.canonicalize(), all.canonicalize(), "case {case}");
    }
}
