//! Concurrent-chaos soak for the multi-tenant query server.
//!
//! Each seeded round generates a `lusail-testkit` case (data, partition,
//! query, oracle), wraps its federation in a [`QueryServer`] with small
//! global/tenant capacities and a bounded shared probe cache, and hammers
//! it from several tenant threads while a seeded fault plan kills
//! endpoints mid-run (dead outright, dying after N requests, or
//! transiently flaky). The server's contract under chaos:
//!
//! * every **admitted** query that claims a complete result is
//!   oracle-exact (a stale shared probe cache or statistics entry would
//!   surface here as a complete-but-wrong answer);
//! * every admitted query that degrades stays an honest **subset** of the
//!   oracle — rows may go missing, never be invented;
//! * every refusal is a **typed** [`Rejection`] (shed with a reason,
//!   deadline, or draining) — no query is silently dropped or queued;
//! * after [`QueryServer::drain`] every tenant is refused with
//!   `draining`, the wait is bounded by the longest outstanding deadline
//!   plus the drain margin, and nothing is abandoned;
//! * the admission ledger balances exactly: admitted + rejected equals
//!   the attempts the tenants made.
//!
//! Odd rounds run with **cross-tenant batching enabled** (a short window
//! and a small count trigger, so concurrent tenants really do land in
//! shared windows): every contract above must hold unchanged, and two
//! batching-specific hazards get adversarial coverage — a mid-run kill
//! landing *inside a shared subquery evaluation* must degrade every
//! dependent tenant honestly (their complete-claims are still checked
//! against the oracle, so a silently-shared hole or a cross-tenant row
//! leak would fail the exactness/subset asserts), and the admission
//! ledger must balance even though queries now wait in windows while
//! holding their sessions.
//!
//! Cases are generated without OPTIONAL (so subset means plain multiset
//! inclusion, no subsumption wrinkle) and without LIMIT (so a complete
//! answer has exactly one correct value).

use lusail_benchdata::common::Rng;
use lusail_core::{Lusail, LusailConfig};
use lusail_server::{
    BatchConfig, BatchStats, QueryServer, Rejection, ServeError, ServerConfig, TenantPolicy,
};
use lusail_sparql::SolutionSet;
use lusail_testkit::diff::faulty_policy;
use lusail_testkit::{oracle_solutions, Case, FaultSpec, GenConfig};
use std::sync::{Arc, Barrier};
use std::thread;
use std::time::Duration;

const SEEDS: u64 = 40;
const TENANTS: usize = 4;
const QUERIES_PER_TENANT: usize = 6;
const DEADLINE_BUDGET: Duration = Duration::from_secs(5);
/// Must match the processing margin `QueryServer::drain` adds to the
/// longest outstanding deadline.
const DRAIN_MARGIN: Duration = Duration::from_millis(500);

fn soak_config() -> GenConfig {
    GenConfig {
        p_optional: 0.0,
        p_limit: 0.0,
        ..GenConfig::default()
    }
}

/// True when every row of `sub` appears in `sup` with at least the same
/// multiplicity. Both sides must be canonicalized (sorted rows, sorted
/// vars); schemas may still differ when degradation dropped a column, in
/// which case the subset claim is checked on the shared projection.
fn is_multiset_subset(sub: &SolutionSet, sup: &SolutionSet) -> bool {
    if sub.is_empty() {
        return true;
    }
    let (sub, sup) = if sub.vars == sup.vars {
        (sub.clone(), sup.clone())
    } else {
        let shared: Vec<String> = sup
            .vars
            .iter()
            .filter(|v| sub.vars.contains(v))
            .cloned()
            .collect();
        (
            sub.project(&shared).canonicalize(),
            sup.project(&shared).canonicalize(),
        )
    };
    let mut i = 0;
    for row in &sup.rows {
        if i == sub.rows.len() {
            return true;
        }
        if row == &sub.rows[i] {
            i += 1;
        }
    }
    i == sub.rows.len()
}

/// One seeded chaos round. Returns the server counters and batching
/// stats for the cross-round aggregate assertions.
fn chaos_round(round: u64, seed: u64) -> (lusail_server::ServerCounters, BatchStats) {
    let case = Case::generate(seed, &soak_config());
    let faults = match round % 3 {
        0 => FaultSpec::default(), // clean round: everything must complete
        1 => {
            let mut rng = Rng::new(seed ^ 0xC4A0_5000_0000_0001);
            FaultSpec::random(&mut rng, case.n_endpoints)
        }
        _ => {
            // Mid-run kills: healthy endpoints that die after a few
            // requests, exactly while other tenants' queries are in
            // flight against the shared caches.
            let mut rng = Rng::new(seed ^ 0xC4A0_5000_0000_0002);
            let mut spec = FaultSpec::random_dead_only(&mut rng, case.n_endpoints);
            for slot in spec.profiles.iter_mut().flatten() {
                *slot = lusail_endpoint::FaultProfile::dies_after(1 + rng.below(12) as u64);
            }
            spec
        }
    };
    let clean = faults.is_clean();
    let oracle = oracle_solutions(&case);
    let (fed, _locals) = case.federation(&faults);

    let engine = Lusail::new(LusailConfig {
        probe_cache_capacity: Some(64), // small: force LRU churn under load
        ..LusailConfig::default()
    })
    .with_policy(faulty_policy());
    let server = QueryServer::new(
        fed,
        engine,
        ServerConfig {
            max_in_flight: 3,
            threads_per_query: 1 + (round % 2) as usize,
            default_tenant: TenantPolicy {
                max_in_flight: 2,
                deadline_budget: DEADLINE_BUDGET,
            },
            // Odd rounds batch: a window short enough to keep the soak
            // fast but long enough that racing tenants genuinely share
            // it, with the count trigger alternating between 2 and 3.
            batch: BatchConfig {
                enabled: round % 2 == 1,
                window: Duration::from_millis(8),
                max_batch: 2 + (round as usize / 2 % 2),
            },
            ..ServerConfig::default()
        },
    );

    // Phase 1: concurrent tenants, released together so admissions race.
    let barrier = Arc::new(Barrier::new(TENANTS));
    let mut handles = Vec::new();
    for t in 0..TENANTS {
        let server = Arc::clone(&server);
        let query = case.query.clone();
        let oracle = oracle.clone();
        let barrier = Arc::clone(&barrier);
        handles.push(thread::spawn(move || {
            let tenant = format!("tenant-{t}");
            barrier.wait();
            let mut attempts = 0u64;
            for _ in 0..QUERIES_PER_TENANT {
                attempts += 1;
                match server.execute(&tenant, &query) {
                    Ok(result) => {
                        let got = result.solutions.canonicalize();
                        if result.complete {
                            assert_eq!(
                                got, oracle,
                                "{tenant}: complete result diverged from the oracle \
                                 (seed {seed:#x}) — stale shared cache?"
                            );
                        } else {
                            assert!(
                                !clean,
                                "{tenant}: degraded result on a clean federation \
                                 (seed {seed:#x})"
                            );
                            assert!(
                                is_multiset_subset(&got, &oracle),
                                "{tenant}: incomplete result invented rows \
                                 (seed {seed:#x})"
                            );
                        }
                    }
                    Err(ServeError::Rejected(rejection)) => {
                        // Phase 1 never drains; the only legal refusals
                        // are load shedding, and every one carries its
                        // reason.
                        match rejection {
                            Rejection::Shed { reason } => {
                                assert!(!reason.is_empty(), "untyped shed (seed {seed:#x})")
                            }
                            other => panic!(
                                "{tenant}: unexpected {} rejection before drain \
                                 (seed {seed:#x})",
                                other.code()
                            ),
                        }
                    }
                    Err(ServeError::Engine(e)) => {
                        panic!("{tenant}: engine error under chaos (seed {seed:#x}): {e:?}")
                    }
                }
            }
            attempts
        }));
    }
    let attempts: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();

    // Phase 2: graceful drain. Nothing is in flight anymore, so the wait
    // must come in far under its own bound, and nothing may be abandoned.
    let report = server.drain();
    assert_eq!(
        report.abandoned, 0,
        "drain abandoned queries (seed {seed:#x})"
    );
    assert!(
        report.waited <= DEADLINE_BUDGET + DRAIN_MARGIN,
        "drain waited {:?}, beyond the longest deadline bound (seed {seed:#x})",
        report.waited
    );

    // Phase 3: every tenant is now refused with the draining code.
    for t in 0..TENANTS {
        match server.execute(&format!("tenant-{t}"), &case.query) {
            Err(ServeError::Rejected(Rejection::Draining)) => {}
            other => panic!(
                "post-drain query was not refused as draining (seed {seed:#x}): \
                 {other:?}"
            ),
        }
    }

    // The ledger balances: every attempt was admitted or typed-rejected.
    let counters = server.counters();
    assert_eq!(
        counters.admitted + counters.shed + counters.deadline_rejected,
        attempts,
        "admission ledger out of balance (seed {seed:#x})"
    );
    assert_eq!(counters.draining_rejected, TENANTS as u64);
    assert_eq!(
        server.stats_snapshot().queries_shed,
        counters.total_rejected(),
        "shed overlay diverged from the rejection counters (seed {seed:#x})"
    );
    assert_eq!(server.in_flight(), 0);
    (counters, server.batch_stats())
}

#[test]
fn concurrent_chaos_soak() {
    let mut stream = Rng::new(0xC4A0_57E5);
    let mut total = lusail_server::ServerCounters::default();
    let mut batch_total = BatchStats::default();
    for round in 0..SEEDS {
        let seed = stream.next_u64();
        let (counters, batch) = chaos_round(round, seed);
        total.admitted += counters.admitted;
        total.complete_results += counters.complete_results;
        total.incomplete_results += counters.incomplete_results;
        total.shed += counters.shed;
        total.health_invalidations += counters.health_invalidations;
        if round % 2 == 1 {
            batch_total.windows += batch.windows;
            batch_total.batched_queries += batch.batched_queries;
            batch_total.max_window = batch_total.max_window.max(batch.max_window);
            batch_total.shared_hits += batch.shared_hits;
            batch_total.wire_requests_saved += batch.wire_requests_saved;
        } else {
            assert_eq!(
                batch,
                BatchStats::default(),
                "an unbatched round went through the scheduler (seed {seed:#x})"
            );
        }
    }
    // The soak must actually have exercised both sides of every contract:
    // completed queries, degraded queries (mid-run kills landed), and
    // circuit transitions that invalidated the shared caches.
    assert!(total.complete_results > 0, "no round completed a query");
    assert!(
        total.incomplete_results > 0,
        "no round degraded — the fault plans never landed mid-run"
    );
    assert!(
        total.health_invalidations > 0,
        "no circuit transition reached the shared-cache invalidation hook"
    );
    assert_eq!(
        total.admitted,
        total.complete_results + total.incomplete_results
    );
    // The batched rounds must really have batched — windows ran, tenants
    // shared them, and identical subqueries were answered from the memo
    // rather than the wire.
    assert!(batch_total.windows > 0, "no batched round ran a window");
    assert!(
        batch_total.max_window >= 2,
        "no window ever held two tenants: {batch_total:?}"
    );
    assert!(
        batch_total.shared_hits > 0 && batch_total.wire_requests_saved > 0,
        "batched rounds never shared a subquery: {batch_total:?}"
    );
}
