//! Tier-1 differential suite: every federated engine against the merged
//! single-store oracle, over seeded random cases (see `lusail-testkit`).
//!
//! Each engine runs a bounded stream of generated cases twice — clean
//! (exact oracle equality) and under a seeded fault plan (honesty: no
//! invented rows, `complete` only when nothing is missing). Every run is
//! traced, and the trace invariants of
//! `lusail_testkit::check_trace_invariants` are enforced alongside the
//! oracle contract: per-kind wire attempts must equal the federation's
//! request counters, delayed subqueries must carry a delay reason, and
//! the trace must end with its query-finished event. A failure
//! prints a shrunk, self-contained repro whose seed replays here via
//!
//! ```text
//! LUSAIL_TEST_SEED=0x<case seed> cargo test -q differential
//! ```
//!
//! (when the variable is set, the suite runs that one case for every
//! engine *in addition to* seeding the regular stream with it). The
//! long-running exploration lives in the `fuzz` binary of
//! `lusail-testkit`; this suite pins a fixed budget so `cargo test -q`
//! stays fast.

use lusail_benchdata::common::Rng;
use lusail_testkit::{
    check_replicated, check_tuned, run_backend_case, run_batched_case, run_case, run_stats_case,
    seed_from_env, Case, EngineKind, FaultSpec, GenConfig, LusailTuning, SEED_ENV_VAR,
};

/// Default stream seed; overridable via `LUSAIL_TEST_SEED`.
const DEFAULT_STREAM_SEED: u64 = 0xD1FF_0001;

/// Cases per engine; each case runs clean *and* faulty.
const CASES_PER_ENGINE: usize = 60;

fn drive(engine: EngineKind) {
    let config = GenConfig::default();
    let env_override = std::env::var(SEED_ENV_VAR).is_ok();
    let stream_seed = seed_from_env(DEFAULT_STREAM_SEED);

    // A seed printed by a repro is a *case* seed: replay it directly
    // first so the printed rerun line is honest.
    if env_override {
        for faulty in [false, true] {
            if let Err(repro) = run_case(stream_seed, &config, engine, faulty) {
                panic!(
                    "replayed case {stream_seed:#x} ({} mode):\n{repro}",
                    if faulty { "faulty" } else { "clean" }
                );
            }
        }
    }

    let mut stream = Rng::new(stream_seed);
    for i in 0..CASES_PER_ENGINE {
        let case_seed = stream.next_u64();
        for faulty in [false, true] {
            if let Err(repro) = run_case(case_seed, &config, engine, faulty) {
                panic!(
                    "case {i} (seed {case_seed:#x}, {} mode):\n{repro}",
                    if faulty { "faulty" } else { "clean" }
                );
            }
        }
    }
}

#[test]
fn lusail_matches_the_oracle() {
    drive(EngineKind::Lusail);
}

#[test]
fn fedx_matches_the_oracle() {
    drive(EngineKind::FedX);
}

#[test]
fn hibiscus_matches_the_oracle() {
    drive(EngineKind::Hibiscus);
}

#[test]
fn splendid_matches_the_oracle() {
    drive(EngineKind::Splendid);
}

/// Replicated-partition sweep: every endpoint gets one replica
/// (replication 2) and a seeded fault plan kills one or more *primaries*
/// — dead outright or dying after a few served requests, the
/// "primary killed mid-query" scenario. Since every replica group keeps a
/// healthy member, failover must absorb every kill: all four engines are
/// required to return the exact oracle answer with `complete = true`
/// (`check_replicated` turns an incomplete outcome into a violation).
#[test]
fn replicated_partitions_survive_primary_kills() {
    const REPLICATION: usize = 2;
    let config = GenConfig::default();
    let mut stream = Rng::new(seed_from_env(DEFAULT_STREAM_SEED) ^ 0x5EB1_1CA7);
    for i in 0..30 {
        let case_seed = stream.next_u64();
        let case = Case::generate(case_seed, &config);
        let mut fault_rng = Rng::new(case_seed ^ 0xF417_0C11);
        let faults = FaultSpec::random_primary_kill(&mut fault_rng, case.n_endpoints, REPLICATION);
        for engine in EngineKind::ALL {
            if let Err(v) = check_replicated(&case, engine, &faults, REPLICATION, true) {
                panic!(
                    "replicated case {i} (seed {case_seed:#x}, {}): {v}",
                    engine.name()
                );
            }
        }
    }
}

/// Honesty when a *whole* replica group is dead: no replica can absorb
/// the kill, so rows may go missing — the contract degrades to the
/// faulty-mode one (no invented rows, `complete` only when nothing is
/// actually missing), which `check_replicated` enforces with
/// `require_complete = false`.
#[test]
fn whole_group_death_degrades_honestly() {
    const REPLICATION: usize = 2;
    let config = GenConfig::default();
    let mut stream = Rng::new(seed_from_env(DEFAULT_STREAM_SEED) ^ 0xDEAD_97F0);
    for i in 0..10 {
        let case_seed = stream.next_u64();
        let case = Case::generate(case_seed, &config);
        // Kill endpoint 0's whole group: the primary and its replica.
        let mut profiles = vec![None; case.n_endpoints * REPLICATION];
        profiles[0] = Some(lusail_endpoint::FaultProfile::dead());
        profiles[case.n_endpoints] = Some(lusail_endpoint::FaultProfile::dead());
        let faults = FaultSpec { profiles };
        for engine in EngineKind::ALL {
            if let Err(v) = check_replicated(&case, engine, &faults, REPLICATION, false) {
                panic!(
                    "group-death case {i} (seed {case_seed:#x}, {}): {v}",
                    engine.name()
                );
            }
        }
    }
}

/// Adaptive-batching + reordered-eval sweep: Lusail with a tiny fixed
/// `block_size` (2) and adaptive sizing on, so even the small generated
/// cases genuinely split bound subqueries into multiple `VALUES` blocks
/// and then grow them from the first block's observed cardinality — the
/// exact configuration the benchmark suite's "optimized" side uses. The
/// baselines run with their defaults (tuning only affects Lusail) and
/// every engine is held to the usual oracle contract, clean and faulted.
#[test]
fn tuned_adaptive_batching_matches_the_oracle() {
    let tuning = LusailTuning {
        block_size: 2,
        adaptive_values: true,
    };
    let config = GenConfig::default();
    let mut stream = Rng::new(seed_from_env(DEFAULT_STREAM_SEED) ^ 0xADA7_B10C);
    for i in 0..30 {
        let case_seed = stream.next_u64();
        let case = Case::generate(case_seed, &config);
        let mut fault_rng = Rng::new(case_seed ^ 0xF417_0C11);
        let clean = FaultSpec::default();
        let faulty = FaultSpec::random(&mut fault_rng, case.n_endpoints);
        for engine in EngineKind::ALL {
            for faults in [&clean, &faulty] {
                if let Err(v) = check_tuned(&case, engine, faults, tuning) {
                    panic!(
                        "tuned case {i} (seed {case_seed:#x}, {}, {} mode): {v}",
                        engine.name(),
                        if faults.is_clean() { "clean" } else { "faulty" }
                    );
                }
            }
        }
    }
}

/// Stats-vs-wire differential sweep: 30 seeded cases, every engine, with
/// offline statistics attached vs absent, clean and under dead-only fault
/// plans, at worker budgets 1 and 4. Statistics may only *elide* probes:
/// `check_stats` demands byte-identical canonicalized solutions and
/// completeness flags, per-kind wire requests stats-on ≤ stats-off, and
/// both runs individually passing the oracle contract and trace
/// invariants. (Only Lusail consults statistics today — the baselines run
/// as an "attached stats are inert elsewhere" control.) Failures shrink
/// to a self-contained repro like every other sweep here.
#[test]
fn stats_elision_is_invisible_in_results() {
    let config = GenConfig::default();
    let mut stream = Rng::new(seed_from_env(DEFAULT_STREAM_SEED) ^ 0x57A7_57A7);
    for i in 0..30 {
        let case_seed = stream.next_u64();
        // Alternate worker budgets across the stream (running every case
        // at both budgets would double the tier-1 bill; the parallel
        // determinism contract is pinned separately).
        let threads = if i % 2 == 0 { 1 } else { 4 };
        for engine in EngineKind::ALL {
            for faulty in [false, true] {
                if let Err(repro) = run_stats_case(case_seed, &config, engine, faulty, threads) {
                    panic!(
                        "stats case {i} (seed {case_seed:#x}, {}, {} mode, {threads} threads):\n{repro}",
                        engine.name(),
                        if faulty { "faulty" } else { "clean" }
                    );
                }
            }
        }
    }
}

/// Backend-differential sweep: 30 seeded cases, every engine, each case
/// materialized on the BTree backend *and* the compressed sorted-column
/// backend, clean and under full-random fault plans, at worker budgets 1
/// and 4. The contract is strict identity, not subset: `check_backends`
/// demands byte-identical canonicalized solutions, completeness flags,
/// per-kind wire request counters, `rows_scanned`, and the full counter
/// window on both backends (generated cases sit below the BTree estimate
/// cap, so both backends plan identically — see the `check_backends`
/// docs). A failure shrinks to a self-contained repro and replays via
/// `LUSAIL_TEST_SEED` like every other sweep here.
#[test]
fn storage_backends_are_observationally_identical() {
    let config = GenConfig::default();
    if std::env::var(SEED_ENV_VAR).is_ok() {
        let case_seed = seed_from_env(DEFAULT_STREAM_SEED);
        for engine in EngineKind::ALL {
            for faulty in [false, true] {
                for threads in [1, 4] {
                    if let Err(repro) =
                        run_backend_case(case_seed, &config, engine, faulty, threads)
                    {
                        panic!(
                            "replayed backend case {case_seed:#x} ({}, {} mode, {threads} threads):\n{repro}",
                            engine.name(),
                            if faulty { "faulty" } else { "clean" }
                        );
                    }
                }
            }
        }
    }
    let mut stream = Rng::new(seed_from_env(DEFAULT_STREAM_SEED) ^ 0xBACC_E4D5);
    for i in 0..30 {
        let case_seed = stream.next_u64();
        // Alternate worker budgets across the stream, like the stats
        // sweep: both budgets get coverage without doubling the bill.
        let threads = if i % 2 == 0 { 1 } else { 4 };
        for engine in EngineKind::ALL {
            for faulty in [false, true] {
                if let Err(repro) = run_backend_case(case_seed, &config, engine, faulty, threads) {
                    panic!(
                        "backend case {i} (seed {case_seed:#x}, {}, {} mode, {threads} threads):\n{repro}",
                        engine.name(),
                        if faulty { "faulty" } else { "clean" }
                    );
                }
            }
        }
    }
}

/// Batched-vs-solo differential sweep: 30 seeded cases, clean and under
/// dead-only fault plans, at batch windows 1, 2, and 8 and worker
/// budgets 1 and 4 (alternating across the stream). `check_batched`
/// submits the window's copies of the case's query as one MQO batch and
/// demands every batched answer be byte-identical to the sequential solo
/// execution of the same query — canonicalized solutions, completeness
/// flag, and failure attribution — with the batch never issuing more
/// wire requests than the sequential baseline (strictly fewer whenever a
/// clean batch claims savings). LIMIT is excluded: any `k` oracle rows
/// are a correct limited answer, so "byte-identical" would be
/// ill-defined. Fault plans are dead-only because transient fates are
/// drawn per request index — not invariant under the elision batching
/// performs. A failure shrinks to a self-contained repro and replays via
/// `LUSAIL_TEST_SEED` like every other sweep here.
#[test]
fn batched_execution_is_byte_identical_to_solo() {
    let config = GenConfig {
        p_limit: 0.0,
        ..GenConfig::default()
    };
    let mut stream = Rng::new(seed_from_env(DEFAULT_STREAM_SEED) ^ 0xBA7C_4ED1);
    let mut shared_hits = 0u64;
    let mut saved_requests = 0u64;
    for i in 0..30 {
        let case_seed = stream.next_u64();
        let threads = if i % 2 == 0 { 1 } else { 4 };
        for faulty in [false, true] {
            for window in [1usize, 2, 8] {
                match run_batched_case(case_seed, &config, faulty, window, threads) {
                    Ok(report) => {
                        shared_hits += report.shared_hits;
                        saved_requests += report.wire_requests_saved;
                    }
                    Err(repro) => panic!(
                        "batched case {i} (seed {case_seed:#x}, {} mode, window {window}, \
                         {threads} threads):\n{repro}",
                        if faulty { "faulty" } else { "clean" }
                    ),
                }
            }
        }
    }
    // Coverage: a sweep that never shared a subquery (or never saved a
    // request) would be vacuous — multi-item windows of identical
    // queries must hit the shared-relation memo.
    assert!(
        shared_hits > 0,
        "batched sweep never hit the shared-relation memo"
    );
    assert!(
        saved_requests > 0,
        "batched sweep never saved a wire request"
    );
}

/// High-straddle configuration: join instances cross endpoints as often
/// as the generator can arrange, so the GJV/decomposition machinery (not
/// the disjoint fast path) carries the load.
#[test]
fn high_straddle_cases_match_the_oracle() {
    let config = GenConfig {
        straddle: 1.0,
        ..GenConfig::default()
    };
    let mut stream = Rng::new(seed_from_env(DEFAULT_STREAM_SEED) ^ 0x57AD_D1E5);
    for i in 0..20 {
        let case_seed = stream.next_u64();
        for engine in EngineKind::ALL {
            if let Err(repro) = run_case(case_seed, &config, engine, false) {
                panic!(
                    "case {i} (seed {case_seed:#x}, {}):\n{repro}",
                    engine.name()
                );
            }
        }
    }
}
