//! End-to-end tests of the `lusail-cli` binary: generate a federation to
//! disk, query it back, explain a plan, and exercise the error paths.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lusail-cli"))
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lusail-cli-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generate_query_explain_roundtrip() {
    let dir = tempdir("roundtrip");
    let out = cli()
        .args([
            "generate",
            "--workload",
            "lubm",
            "--out",
            dir.to_str().unwrap(),
            "--size",
            "2",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Generated files exist.
    assert!(dir.join("univ-0.nt").exists());
    assert!(dir.join("univ-1.nt").exists());
    assert!(dir.join("queries/Q3.rq").exists());

    // Query them back.
    let out = cli()
        .args([
            "query",
            "--endpoint",
            dir.join("univ-0.nt").to_str().unwrap(),
            "--endpoint",
            dir.join("univ-1.nt").to_str().unwrap(),
            "--query-file",
            dir.join("queries/Q3.rq").to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("rows in"), "no summary line:\n{stdout}");
    assert!(stdout.contains("remote requests"));

    // FedX returns the same row count.
    let out_fedx = cli()
        .args([
            "query",
            "--engine",
            "fedx",
            "--endpoint",
            dir.join("univ-0.nt").to_str().unwrap(),
            "--endpoint",
            dir.join("univ-1.nt").to_str().unwrap(),
            "--query-file",
            dir.join("queries/Q3.rq").to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(out_fedx.status.success());
    let rows = |s: &str| -> String {
        s.lines()
            .find(|l| l.contains("rows in"))
            .unwrap_or("")
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_string()
    };
    assert_eq!(
        rows(&stdout),
        rows(&String::from_utf8_lossy(&out_fedx.stdout)),
        "engines disagree via CLI"
    );

    // Explain prints a plan.
    let out = cli()
        .args([
            "explain",
            "--endpoint",
            dir.join("univ-0.nt").to_str().unwrap(),
            "--endpoint",
            dir.join("univ-1.nt").to_str().unwrap(),
            "--query-file",
            dir.join("queries/Q4.rq").to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("global join variables"), "{stdout}");
    assert!(stdout.contains("subquery 1"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

/// The offline statistics workflow end to end: `stats` writes one
/// `.stats` file per endpoint, `query --stats DIR` loads them back and
/// elides probes — same rows, strictly fewer remote requests than the
/// plain run — and `query --stats build` (in-process summaries) issues
/// exactly as many requests as the file-loaded run, pinning the text
/// round-trip as faithful.
#[test]
fn stats_build_and_load_elide_requests_without_changing_rows() {
    let dir = tempdir("stats");
    let out = cli()
        .args([
            "generate",
            "--workload",
            "lubm",
            "--out",
            dir.to_str().unwrap(),
            "--size",
            "2",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let out = cli()
        .args([
            "stats",
            "--endpoint",
            dir.join("univ-0.nt").to_str().unwrap(),
            "--endpoint",
            dir.join("univ-1.nt").to_str().unwrap(),
            "--out",
            dir.join("stats").to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(dir.join("stats/univ-0.stats").exists());
    assert!(dir.join("stats/univ-1.stats").exists());

    let run = |stats_arg: Option<&str>| -> String {
        let mut args = vec![
            "query".to_string(),
            "--endpoint".into(),
            dir.join("univ-0.nt").to_str().unwrap().into(),
            "--endpoint".into(),
            dir.join("univ-1.nt").to_str().unwrap().into(),
            "--query-file".into(),
            dir.join("queries/Q1.rq").to_str().unwrap().into(),
        ];
        if let Some(s) = stats_arg {
            args.push("--stats".into());
            args.push(s.into());
        }
        let out = cli().args(&args).output().expect("spawn");
        assert!(
            out.status.success(),
            "{}",
            String::from_utf8_lossy(&out.stderr)
        );
        String::from_utf8_lossy(&out.stdout).into_owned()
    };
    let summary = |s: &str| -> (u64, u64) {
        let line = s.lines().find(|l| l.contains("rows in")).expect("summary");
        let words: Vec<&str> = line.split_whitespace().collect();
        let rows = words[0].parse().expect("row count");
        let reqs_at = words.iter().position(|w| *w == "remote").expect("requests") - 1;
        (rows, words[reqs_at].parse().expect("request count"))
    };

    let wire = run(None);
    let loaded = run(Some(dir.join("stats").to_str().unwrap()));
    let built = run(Some("build"));
    let (wire_rows, wire_reqs) = summary(&wire);
    let (loaded_rows, loaded_reqs) = summary(&loaded);
    let (built_rows, built_reqs) = summary(&built);
    assert_eq!(wire_rows, loaded_rows, "statistics changed the row count");
    assert_eq!(wire_rows, built_rows, "in-process statistics changed rows");
    assert!(
        loaded_reqs < wire_reqs,
        "statistics elided nothing: {loaded_reqs} vs {wire_reqs} requests"
    );
    assert_eq!(
        loaded_reqs, built_reqs,
        "file-loaded statistics diverge from in-process summaries"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn demo_prints_the_interlink_row() {
    let out = cli().arg("demo").output().expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("MIT"), "{stdout}");
    assert!(stdout.contains("GJVs [\"U\"]"), "{stdout}");
}

#[test]
fn error_paths_exit_nonzero_with_messages() {
    // No subcommand.
    let out = cli().output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    // Unknown engine.
    let dir = tempdir("errors");
    std::fs::write(
        dir.join("a.nt"),
        "<http://x/s> <http://x/p> <http://x/o> .\n",
    )
    .unwrap();
    let out = cli()
        .args([
            "query",
            "--endpoint",
            dir.join("a.nt").to_str().unwrap(),
            "--query",
            "SELECT * WHERE { ?s ?p ?o }",
            "--engine",
            "nope",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown engine"));

    // Malformed SPARQL.
    let out = cli()
        .args([
            "query",
            "--endpoint",
            dir.join("a.nt").to_str().unwrap(),
            "--query",
            "SELECT WHERE {",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("parse error"));

    // Corrupt endpoint file.
    std::fs::write(dir.join("bad.nt"), "not ntriples\n").unwrap();
    let out = cli()
        .args([
            "query",
            "--endpoint",
            dir.join("bad.nt").to_str().unwrap(),
            "--query",
            "SELECT * WHERE { ?s ?p ?o }",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("N-Triples parse error"));
    let _ = std::fs::remove_dir_all(&dir);
}
