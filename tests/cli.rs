//! End-to-end tests of the `lusail-cli` binary: generate a federation to
//! disk, query it back, explain a plan, and exercise the error paths.

use std::path::PathBuf;
use std::process::Command;

fn cli() -> Command {
    Command::new(env!("CARGO_BIN_EXE_lusail-cli"))
}

fn tempdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("lusail-cli-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn generate_query_explain_roundtrip() {
    let dir = tempdir("roundtrip");
    let out = cli()
        .args([
            "generate",
            "--workload",
            "lubm",
            "--out",
            dir.to_str().unwrap(),
            "--size",
            "2",
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    // Generated files exist.
    assert!(dir.join("univ-0.nt").exists());
    assert!(dir.join("univ-1.nt").exists());
    assert!(dir.join("queries/Q3.rq").exists());

    // Query them back.
    let out = cli()
        .args([
            "query",
            "--endpoint",
            dir.join("univ-0.nt").to_str().unwrap(),
            "--endpoint",
            dir.join("univ-1.nt").to_str().unwrap(),
            "--query-file",
            dir.join("queries/Q3.rq").to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("rows in"), "no summary line:\n{stdout}");
    assert!(stdout.contains("remote requests"));

    // FedX returns the same row count.
    let out_fedx = cli()
        .args([
            "query",
            "--engine",
            "fedx",
            "--endpoint",
            dir.join("univ-0.nt").to_str().unwrap(),
            "--endpoint",
            dir.join("univ-1.nt").to_str().unwrap(),
            "--query-file",
            dir.join("queries/Q3.rq").to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(out_fedx.status.success());
    let rows = |s: &str| -> String {
        s.lines()
            .find(|l| l.contains("rows in"))
            .unwrap_or("")
            .split_whitespace()
            .next()
            .unwrap_or("")
            .to_string()
    };
    assert_eq!(
        rows(&stdout),
        rows(&String::from_utf8_lossy(&out_fedx.stdout)),
        "engines disagree via CLI"
    );

    // Explain prints a plan.
    let out = cli()
        .args([
            "explain",
            "--endpoint",
            dir.join("univ-0.nt").to_str().unwrap(),
            "--endpoint",
            dir.join("univ-1.nt").to_str().unwrap(),
            "--query-file",
            dir.join("queries/Q4.rq").to_str().unwrap(),
        ])
        .output()
        .expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("global join variables"), "{stdout}");
    assert!(stdout.contains("subquery 1"), "{stdout}");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn demo_prints_the_interlink_row() {
    let out = cli().arg("demo").output().expect("spawn");
    assert!(out.status.success());
    let stdout = String::from_utf8_lossy(&out.stdout);
    assert!(stdout.contains("MIT"), "{stdout}");
    assert!(stdout.contains("GJVs [\"U\"]"), "{stdout}");
}

#[test]
fn error_paths_exit_nonzero_with_messages() {
    // No subcommand.
    let out = cli().output().expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("usage"));

    // Unknown engine.
    let dir = tempdir("errors");
    std::fs::write(
        dir.join("a.nt"),
        "<http://x/s> <http://x/p> <http://x/o> .\n",
    )
    .unwrap();
    let out = cli()
        .args([
            "query",
            "--endpoint",
            dir.join("a.nt").to_str().unwrap(),
            "--query",
            "SELECT * WHERE { ?s ?p ?o }",
            "--engine",
            "nope",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown engine"));

    // Malformed SPARQL.
    let out = cli()
        .args([
            "query",
            "--endpoint",
            dir.join("a.nt").to_str().unwrap(),
            "--query",
            "SELECT WHERE {",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("parse error"));

    // Corrupt endpoint file.
    std::fs::write(dir.join("bad.nt"), "not ntriples\n").unwrap();
    let out = cli()
        .args([
            "query",
            "--endpoint",
            dir.join("bad.nt").to_str().unwrap(),
            "--query",
            "SELECT * WHERE { ?s ?p ?o }",
        ])
        .output()
        .expect("spawn");
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("N-Triples parse error"));
    let _ = std::fs::remove_dir_all(&dir);
}
