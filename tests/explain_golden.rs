//! EXPLAIN ANALYZE golden under a manual clock at `--threads 4`: the
//! committed snapshot `tests/golden/explain_analyze_lubm_q4.txt` was
//! produced by the sequential CLI path (`scripts/verify.sh` re-checks it
//! at every verify run), and the parallel executor must reproduce it
//! byte for byte — worker dispatch may not change a single counter,
//! decomposition line, join step, or phase timing in the report.
//!
//! The test replays the CLI's exact construction path: generate the LUBM
//! size-2 workload, round-trip every endpoint through its N-Triples
//! serialization into a fresh shared dictionary (what `lusail-cli query
//! --endpoint F.nt` does when loading files), rebuild the federation
//! under the endpoint names, and run Q4 with `ManualClock` so all phase
//! durations render as 0ns.

use lusail_benchdata::lubm::{self, LubmConfig};
use lusail_endpoint::{ExecOptions, Federation, ManualClock, SparqlEndpoint};
use lusail_rdf::{ntriples, Dictionary};
use lusail_repro::lusail::{Lusail, LusailConfig};
use lusail_sparql::parse_query;
use lusail_store::TripleStore;
use std::sync::Arc;

#[test]
fn explain_analyze_at_four_threads_matches_the_committed_golden() {
    let w = lubm::generate(&LubmConfig::new(2));

    // Round-trip every endpoint through N-Triples into a fresh shared
    // dictionary, exactly as the CLI does when loading `.nt` files.
    let dict = Dictionary::shared();
    let mut builder = Federation::builder(Arc::clone(&dict));
    let mut loaded_lines = String::new();
    for ep in &w.endpoints {
        let mut triples = Vec::with_capacity(ep.triple_count());
        ep.store().scan(None, None, None, |t| {
            triples.push(t);
            true
        });
        let text = ntriples::serialize(&triples, &w.dict);
        let parsed = ntriples::parse_document(&text, &dict).expect("round-trip parses");
        let mut store = TripleStore::new(Arc::clone(&dict));
        store.extend(parsed);
        let name = ep.name().replace([' ', '/'], "_");
        loaded_lines.push_str(&format!(
            "loaded endpoint {name}: {} triples\n",
            store.len()
        ));
        builder = builder.endpoint(&name, store);
    }
    let fed = builder.build();
    // The CLI follows the loader lines with one `storage:` line summing
    // the backends' self-reported resident bytes.
    let resident: u64 = fed.iter().filter_map(|(_, ep)| ep.resident_bytes()).sum();
    let n_endpoints = fed.iter().count();
    loaded_lines.push_str(&format!(
        "storage: backend btree, {resident} B resident across \
         {n_endpoints} endpoint(s)\n"
    ));

    let q4 = w
        .queries
        .iter()
        .find(|nq| nq.name == "Q4")
        .expect("LUBM workload has Q4");
    let query = parse_query(&q4.text, &dict).expect("Q4 parses");

    let engine = Lusail::new(LusailConfig::default()).with_clock(ManualClock::new());
    let opts = ExecOptions::default().with_threads(4);
    let report = engine
        .explain_analyze_with(&fed, &query, &opts)
        .expect("LUBM federation is non-empty");

    // The CLI prints the loader lines, then `println!("\n{report}")`.
    let got = format!("{loaded_lines}\n{report}\n");
    let golden = include_str!("golden/explain_analyze_lubm_q4.txt");
    assert_eq!(
        got, golden,
        "EXPLAIN ANALYZE at threads=4 diverged from the sequential golden"
    );
}
