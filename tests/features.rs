//! Integration tests for the extension features: ORDER BY across engines,
//! EXPLAIN plans, and multi-query optimization.

use lusail_baselines::{FedX, HiBisCus, HibiscusIndex, Splendid, VoidIndex};
use lusail_benchdata::{lubm, qfed};
use lusail_core::Lusail;
use lusail_endpoint::ExecOptions;
use lusail_endpoint::FederatedEngine;
use std::sync::Arc;

#[test]
fn order_by_is_respected_by_every_engine() {
    let w = lubm::generate(&lubm::LubmConfig::new(2));
    let q = lusail_sparql::parse_query(
        &format!(
            "PREFIX ub: <{}> SELECT ?n WHERE {{ ?u a ub:University . ?u ub:name ?n }} ORDER BY DESC(?n)",
            lubm::UB
        ),
        w.federation.dict(),
    )
    .unwrap();
    let engines: Vec<Arc<dyn FederatedEngine>> = vec![
        Arc::new(Lusail::default()),
        Arc::new(FedX::default()),
        Arc::new(HiBisCus::new(HibiscusIndex::build(&w.endpoint_refs()))),
        Arc::new(Splendid::new(VoidIndex::build(&w.endpoint_refs()))),
    ];
    for engine in engines {
        let sols = engine
            .run_with(&w.federation, &q, &ExecOptions::default())
            .unwrap()
            .solutions;
        let names: Vec<String> = (0..sols.len())
            .map(|i| {
                w.dict
                    .decode(sols.get(i, "n").unwrap())
                    .lexical()
                    .to_string()
            })
            .collect();
        let mut sorted = names.clone();
        sorted.sort();
        sorted.reverse();
        assert_eq!(names, sorted, "{} violates ORDER BY", engine.engine_name());
        assert_eq!(names, ["University 1", "University 0"]);
    }
}

#[test]
fn order_by_with_limit_returns_global_top_k() {
    // The disjoint fast path pushes ORDER BY + LIMIT to the endpoints and
    // re-sorts globally; the result must be the *global* top-k, not some
    // endpoint's.
    let w = lubm::generate(&lubm::LubmConfig::new(3));
    let q = lusail_sparql::parse_query(
        &format!(
            "PREFIX ub: <{}> SELECT ?n WHERE {{ ?u a ub:University . ?u ub:name ?n }} ORDER BY ?n LIMIT 2",
            lubm::UB
        ),
        w.federation.dict(),
    )
    .unwrap();
    let engine = Lusail::default();
    let sols = engine
        .run_with(&w.federation, &q, &ExecOptions::default())
        .unwrap()
        .solutions;
    let names: Vec<String> = (0..sols.len())
        .map(|i| {
            w.dict
                .decode(sols.get(i, "n").unwrap())
                .lexical()
                .to_string()
        })
        .collect();
    assert_eq!(names, ["University 0", "University 1"]);
}

#[test]
fn explain_matches_execution_decisions() {
    let w = lubm::generate(&lubm::LubmConfig::new(4));
    let engine = Lusail::default();
    for name in ["Q1", "Q2", "Q3", "Q4"] {
        let q = &w.query(name).query;
        let plan = engine.explain(&w.federation, q);
        let result = engine.execute(&w.federation, q).unwrap();
        assert_eq!(
            plan.gjvs, result.metrics.gjvs,
            "{name}: explain and execute disagree on GJVs"
        );
        if plan.disjoint {
            assert_eq!(result.metrics.subqueries, 1, "{name}");
        } else {
            assert_eq!(
                plan.subqueries.len(),
                result.metrics.subqueries,
                "{name}: explain and execute disagree on subquery count"
            );
            let planned_delayed = plan.subqueries.iter().filter(|s| s.delayed).count();
            assert_eq!(
                planned_delayed, result.metrics.delayed_subqueries,
                "{name}: explain and execute disagree on delays"
            );
        }
    }
}

#[test]
fn explain_render_mentions_every_endpoint_and_pattern() {
    let w = qfed::generate(&qfed::QfedConfig::default());
    let engine = Lusail::default();
    let text = engine
        .explain(&w.federation, &w.query("C2P2").query)
        .render();
    assert!(text.contains("DrugBank"));
    assert!(text.contains("Sider"));
    assert!(text.contains("sameAs"));
    assert!(text.contains("subquery 1"));
}

#[test]
fn mqo_batch_matches_individual_execution_on_benchmarks() {
    let w = qfed::generate(&qfed::QfedConfig {
        drugs: 100,
        diseases: 30,
        ..Default::default()
    });
    let queries: Vec<lusail_sparql::Query> = w.queries.iter().map(|nq| nq.query.clone()).collect();
    let batch_engine = Lusail::default();
    let (batch_results, report) = batch_engine.execute_batch(&w.federation, &queries).unwrap();
    assert!(report.total_subqueries >= report.distinct_subqueries);
    let single_engine = Lusail::default();
    for (nq, br) in w.queries.iter().zip(&batch_results) {
        let single = single_engine.execute(&w.federation, &nq.query).unwrap();
        assert_eq!(
            br.solutions.canonicalize(),
            single.solutions.canonicalize(),
            "batch and single disagree on {}",
            nq.name
        );
    }
}

#[test]
fn mqo_shares_across_the_c2p2_family() {
    // The C2P2 variants all share the drug/sameAs/sideEffect core:
    // batching them should evaluate far fewer distinct subqueries than the
    // total.
    let w = qfed::generate(&qfed::QfedConfig::default());
    let family: Vec<lusail_sparql::Query> = w
        .queries
        .iter()
        .filter(|nq| nq.name.starts_with("C2P2"))
        .map(|nq| nq.query.clone())
        .collect();
    assert!(family.len() >= 6);
    let engine = Lusail::default();
    let (_, report) = engine.execute_batch(&w.federation, &family).unwrap();
    assert!(
        report.distinct_subqueries < report.total_subqueries,
        "no sharing happened: {report:?}"
    );
}

#[test]
fn correlated_optional_filter_sees_outer_bindings() {
    // SPARQL LeftJoin(P1, P2, F): the filter inside OPTIONAL references an
    // outer variable. A per-group evaluation would make the filter error
    // (unbound ?min) and drop every optional match.
    use lusail_endpoint::{Federation, LocalEndpoint};
    use lusail_rdf::{Dictionary, Term};
    use lusail_store::TripleStore;

    let dict = lusail_rdf::Dictionary::shared();
    let mut st = TripleStore::new(Arc::clone(&dict));
    for (person, min, bid) in [("p1", 10, 15), ("p2", 20, 15), ("p3", 10, 5)] {
        let s = Term::iri(format!("http://x/{person}"));
        st.insert_terms(&s, &Term::iri("http://x/minimum"), &Term::int(min));
        st.insert_terms(&s, &Term::iri("http://x/bid"), &Term::int(bid));
    }
    let q = lusail_sparql::parse_query(
        "SELECT ?p ?b WHERE { ?p <http://x/minimum> ?min . \
         OPTIONAL { ?p <http://x/bid> ?b . FILTER (?b > ?min) } } ORDER BY ?p",
        &dict,
    )
    .unwrap();
    // Local evaluation.
    let sols = lusail_store::eval::evaluate(&st, &q);
    let bound: Vec<bool> = (0..sols.len())
        .map(|i| sols.get(i, "b").is_some())
        .collect();
    // p1: 15 > 10 → bound; p2: 15 > 20 fails → unbound; p3: 5 > 10 fails.
    assert_eq!(bound, [true, false, false]);

    // Federated evaluation agrees.
    let mut st2 = TripleStore::new(Arc::clone(&dict));
    st.scan(None, None, None, |t| {
        st2.insert(t);
        true
    });
    let mut fed = Federation::new(Arc::clone(&dict));
    fed.add(Arc::new(LocalEndpoint::new("A", st2)));
    let got = Lusail::default()
        .run_with(&fed, &q, &ExecOptions::default())
        .unwrap()
        .solutions;
    assert_eq!(got.canonicalize(), sols.canonicalize());
    let _ = Dictionary::new();
}

#[test]
fn correlated_not_exists_filter_sees_outer_bindings() {
    use lusail_rdf::Term;
    use lusail_store::TripleStore;

    let dict = lusail_rdf::Dictionary::shared();
    let mut st = TripleStore::new(Arc::clone(&dict));
    // People with ages; exclude anyone who has a friend *older than
    // themselves* (correlated comparison).
    for (person, age) in [("a", 30), ("b", 40), ("c", 50)] {
        st.insert_terms(
            &Term::iri(format!("http://x/{person}")),
            &Term::iri("http://x/age"),
            &Term::int(age),
        );
    }
    st.insert_terms(
        &Term::iri("http://x/a"),
        &Term::iri("http://x/friend"),
        &Term::iri("http://x/b"),
    );
    st.insert_terms(
        &Term::iri("http://x/b"),
        &Term::iri("http://x/friend"),
        &Term::iri("http://x/a"),
    );
    let q = lusail_sparql::parse_query(
        "SELECT ?p WHERE { ?p <http://x/age> ?age . \
         FILTER NOT EXISTS { ?p <http://x/friend> ?f . ?f <http://x/age> ?fa . \
         FILTER (?fa > ?age) } } ORDER BY ?p",
        &dict,
    )
    .unwrap();
    let sols = lusail_store::eval::evaluate(&st, &q);
    let names: Vec<String> = (0..sols.len())
        .map(|i| dict.decode(sols.get(i, "p").unwrap()).lexical().to_string())
        .collect();
    // a has friend b (40 > 30) → excluded; b's friend a is younger → kept;
    // c has no friends → kept.
    assert_eq!(names, ["http://x/b", "http://x/c"]);
}

#[test]
fn order_by_non_projected_variable_sorts() {
    use lusail_rdf::Term;
    use lusail_store::TripleStore;
    let dict = lusail_rdf::Dictionary::shared();
    let mut st = TripleStore::new(Arc::clone(&dict));
    for (name, rank) in [("carol", 2), ("alice", 3), ("bob", 1)] {
        let s = Term::iri(format!("http://x/{name}"));
        st.insert_terms(&s, &Term::iri("http://x/name"), &Term::lit(name));
        st.insert_terms(&s, &Term::iri("http://x/rank"), &Term::int(rank));
    }
    // ?r is a sort key but NOT projected.
    let q = lusail_sparql::parse_query(
        "SELECT ?n WHERE { ?s <http://x/name> ?n . ?s <http://x/rank> ?r } ORDER BY ?r",
        &dict,
    )
    .unwrap();
    let sols = lusail_store::eval::evaluate(&st, &q);
    let names: Vec<String> = (0..sols.len())
        .map(|i| dict.decode(sols.get(i, "n").unwrap()).lexical().to_string())
        .collect();
    assert_eq!(names, ["bob", "carol", "alice"]);
    assert_eq!(sols.vars, ["n"]); // sort key not leaked into the schema
}

#[test]
fn federated_order_by_non_projected_variable() {
    // The sort key ?r lives in a different subquery column that is not
    // projected by the query; the engine must still ship and sort by it.
    use lusail_endpoint::{Federation, LocalEndpoint};
    use lusail_rdf::Term;
    use lusail_store::TripleStore;
    let dict = lusail_rdf::Dictionary::shared();
    let mut a = TripleStore::new(Arc::clone(&dict));
    let mut b = TripleStore::new(Arc::clone(&dict));
    for (name, rank) in [("carol", 2), ("alice", 3), ("bob", 1)] {
        let s = Term::iri(format!("http://people/{name}"));
        a.insert_terms(&s, &Term::iri("http://x/name"), &Term::lit(name));
        b.insert_terms(&s, &Term::iri("http://x/rank"), &Term::int(rank));
    }
    let mut fed = Federation::new(Arc::clone(&dict));
    fed.add(Arc::new(LocalEndpoint::new("A", a)));
    fed.add(Arc::new(LocalEndpoint::new("B", b)));
    let q = lusail_sparql::parse_query(
        "SELECT ?n WHERE { ?s <http://x/name> ?n . ?s <http://x/rank> ?r } ORDER BY ?r",
        &dict,
    )
    .unwrap();
    let sols = Lusail::default()
        .run_with(&fed, &q, &ExecOptions::default())
        .unwrap()
        .solutions;
    let names: Vec<String> = (0..sols.len())
        .map(|i| dict.decode(sols.get(i, "n").unwrap()).lexical().to_string())
        .collect();
    assert_eq!(names, ["bob", "carol", "alice"]);
    assert_eq!(sols.vars, ["n"]);
}
