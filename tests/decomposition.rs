//! Behavioural invariants of Lusail's pipeline on the benchmark
//! workloads: which queries are disjoint, which variables go global, how
//! the caches and delays behave, and that the metrics are coherent.

use lusail_benchdata::{lubm, qfed};
use lusail_core::{Lusail, LusailConfig};

#[test]
fn lubm_q1_q2_are_disjoint() {
    let w = lubm::generate(&lubm::LubmConfig::new(4));
    let engine = Lusail::default();
    for name in ["Q1", "Q2"] {
        let r = engine.execute(&w.federation, &w.query(name).query).unwrap();
        assert!(
            r.metrics.gjvs.is_empty(),
            "{name} should have no GJVs, got {:?}",
            r.metrics.gjvs
        );
        assert_eq!(r.metrics.subqueries, 1, "{name} should be one subquery");
        // Disjoint fast path: exactly one SELECT per endpoint.
        assert_eq!(
            r.metrics.requests_execution.select_requests,
            w.federation.len() as u64,
            "{name} should send one request per endpoint"
        );
    }
}

#[test]
fn lubm_q3_q4_decompose_into_two_subqueries() {
    let w = lubm::generate(&lubm::LubmConfig::new(4));
    let engine = Lusail::default();
    let r3 = engine.execute(&w.federation, &w.query("Q3").query).unwrap();
    assert_eq!(r3.metrics.gjvs, ["x"]);
    assert_eq!(r3.metrics.subqueries, 2);
    // The generic (?x a GraduateStudent) subquery is delayed, as in §VI-C.
    assert_eq!(r3.metrics.delayed_subqueries, 1);

    let r4 = engine.execute(&w.federation, &w.query("Q4").query).unwrap();
    assert_eq!(r4.metrics.gjvs, ["u"]);
    assert_eq!(r4.metrics.subqueries, 2);
}

#[test]
fn qa_example_detects_u_not_s() {
    // The running example Qa (Fig. 2) on the LUBM federation: the degree
    // variable is global, the student variable is not.
    let w = lubm::generate(&lubm::LubmConfig::new(2));
    let engine = Lusail::default();
    let qa = lusail_sparql::parse_query(
        &format!(
            "PREFIX ub: <{}> SELECT ?S ?P ?U ?A WHERE {{ \
             ?S ub:advisor ?P . ?S ub:takesCourse ?C . \
             ?P ub:doctoralDegreeFrom ?U . ?U ub:name ?A }}",
            lubm::UB
        ),
        w.federation.dict(),
    )
    .unwrap();
    let r = engine.execute(&w.federation, &qa).unwrap();
    assert!(r.metrics.gjvs.contains(&"U".to_string()));
    assert!(!r.metrics.gjvs.contains(&"S".to_string()));
    assert!(!r.solutions.is_empty());
}

#[test]
fn cache_eliminates_probe_requests_on_second_run() {
    let w = qfed::generate(&qfed::QfedConfig::default());
    let engine = Lusail::default();
    let q = &w.query("C2P2").query;
    let r1 = engine.execute(&w.federation, q).unwrap();
    let r2 = engine.execute(&w.federation, q).unwrap();
    assert!(r1.metrics.requests_source_selection.ask_requests > 0);
    assert_eq!(r2.metrics.requests_source_selection.ask_requests, 0);
    assert!(
        r2.metrics.requests_analysis.total_requests()
            <= r1.metrics.requests_analysis.total_requests()
    );
    assert_eq!(r1.solutions.canonicalize(), r2.solutions.canonicalize());
}

#[test]
fn clear_caches_restores_cold_behaviour() {
    let w = qfed::generate(&qfed::QfedConfig::default());
    let engine = Lusail::default();
    let q = &w.query("C2P2").query;
    let r1 = engine.execute(&w.federation, q).unwrap();
    engine.clear_caches();
    let r3 = engine.execute(&w.federation, q).unwrap();
    assert_eq!(
        r1.metrics.requests_source_selection.ask_requests,
        r3.metrics.requests_source_selection.ask_requests
    );
}

#[test]
fn metrics_are_coherent() {
    let w = lubm::generate(&lubm::LubmConfig::new(3));
    let engine = Lusail::default();
    for nq in &w.queries {
        let r = engine.execute(&w.federation, &nq.query).unwrap();
        let m = &r.metrics;
        assert_eq!(m.result_rows, r.solutions.len());
        assert!(m.total >= m.execution, "{}: total < execution", nq.name);
        assert!(
            m.total_requests()
                == m.requests_source_selection.total_requests()
                    + m.requests_analysis.total_requests()
                    + m.requests_execution.total_requests()
        );
        assert!(m.total_bytes() > 0);
    }
}

#[test]
fn disabling_lade_increases_requests_on_disjoint_queries() {
    let w = lubm::generate(&lubm::LubmConfig::new(4));
    let lade = Lusail::default();
    let nolade = Lusail::new(LusailConfig {
        disable_lade: true,
        ..Default::default()
    });
    let q = &w.query("Q2").query;
    let a = lade.execute(&w.federation, q).unwrap();
    let b = nolade.execute(&w.federation, q).unwrap();
    assert_eq!(a.solutions.canonicalize(), b.solutions.canonicalize());
    assert!(
        b.metrics.requests_execution.total_requests()
            > a.metrics.requests_execution.total_requests(),
        "LADE should reduce execution requests on the disjoint Q2"
    );
    assert_eq!(b.metrics.subqueries, 6); // one per triple pattern
}

#[test]
fn smaller_blocks_mean_more_requests_for_delayed_subqueries() {
    let w = lubm::generate(&lubm::LubmConfig::new(4));
    let q = &w.query("Q3").query;
    let small = Lusail::new(LusailConfig {
        block_size: 5,
        ..Default::default()
    });
    let large = Lusail::new(LusailConfig {
        block_size: 500,
        ..Default::default()
    });
    let rs = small.execute(&w.federation, q).unwrap();
    let rl = large.execute(&w.federation, q).unwrap();
    assert_eq!(rs.solutions.canonicalize(), rl.solutions.canonicalize());
    assert!(
        rs.metrics.requests_execution.select_requests
            > rl.metrics.requests_execution.select_requests
    );
}

#[test]
fn check_queries_are_bounded_by_paper_formula() {
    // C_Q ≤ |V| · |T|² check-query *formulations*; each runs at ≤ N
    // endpoints.
    let w = lubm::generate(&lubm::LubmConfig::new(4));
    let engine = Lusail::new(LusailConfig {
        use_cache: false,
        ..Default::default()
    });
    for nq in &w.queries {
        let r = engine.execute(&w.federation, &nq.query).unwrap();
        let t = nq.query.pattern.triples.len() as u64;
        let v = nq.query.pattern.all_vars().len() as u64;
        let n = w.federation.len() as u64;
        assert!(
            r.metrics.check_queries <= v * t * t * n,
            "{}: {} check queries exceeds bound {}",
            nq.name,
            r.metrics.check_queries,
            v * t * t * n
        );
    }
}

#[test]
fn empty_federation_source_yields_empty_results_quickly() {
    let w = lubm::generate(&lubm::LubmConfig::new(2));
    let engine = Lusail::default();
    let q = lusail_sparql::parse_query(
        "SELECT ?x WHERE { ?x <http://no/such/predicate> ?y . ?y <http://no/other> ?z }",
        w.federation.dict(),
    )
    .unwrap();
    let r = engine.execute(&w.federation, &q).unwrap();
    assert!(r.solutions.is_empty());
    assert_eq!(r.metrics.requests_execution.total_requests(), 0);
}
