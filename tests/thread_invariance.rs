//! Thread-count invariance sweep: the parallel executor's determinism
//! contract, enforced across the whole engine matrix.
//!
//! The worker budget (`ExecOptions::with_threads`) is a *physical*
//! execution knob: it decides how many scoped threads dispatch
//! per-endpoint subqueries and partition parallel hash joins, and must
//! never change anything observable. Each generated case runs every
//! engine at budgets 1, 2, and 8 — clean and under a seeded fault plan —
//! and the three observations must compare equal: byte-identical
//! canonicalized solution multisets, identical completeness flags, and
//! identical per-kind wire counters (the full `StatsSnapshot` window,
//! request for request). Trace invariants are enforced inside every
//! observation as well, so a budget that broke the trace contract would
//! fail even before the comparison.
//!
//! Fault determinism rests on the seeded fault profiles drawing from
//! per-endpoint streams: the executor preserves each endpoint's request
//! subsequence exactly, so the same faults fire on the same requests at
//! any budget.

use lusail_benchdata::common::Rng;
use lusail_testkit::{observe, Case, EngineKind, FaultSpec, GenConfig};

/// Stream seed for the sweep's case generator.
const STREAM_SEED: u64 = 0x7EAD_C0DE;

/// Generated cases; each runs clean *and* faulted, at three budgets,
/// for all four engines.
const CASES: usize = 30;

/// The worker budgets under comparison. 1 is the sequential reference.
const BUDGETS: [usize; 3] = [1, 2, 8];

#[test]
fn observations_are_identical_across_worker_budgets() {
    let config = GenConfig::default();
    let mut stream = Rng::new(STREAM_SEED);
    for i in 0..CASES {
        let case_seed = stream.next_u64();
        let case = Case::generate(case_seed, &config);
        let fault_plan = {
            let mut rng = Rng::new(case_seed ^ 0xFA17_0000_0000_0001);
            FaultSpec::random(&mut rng, case.n_endpoints)
        };
        for faults in [FaultSpec::default(), fault_plan] {
            let mode = if faults.is_clean() { "clean" } else { "faulty" };
            for engine in EngineKind::ALL {
                let reference = observe(&case, engine, &faults, BUDGETS[0]).unwrap_or_else(|v| {
                    panic!(
                        "case {i} (seed {case_seed:#x}) engine {} {mode} \
                         threads={}: {v}",
                        engine.name(),
                        BUDGETS[0]
                    )
                });
                for &threads in &BUDGETS[1..] {
                    let got = observe(&case, engine, &faults, threads).unwrap_or_else(|v| {
                        panic!(
                            "case {i} (seed {case_seed:#x}) engine {} {mode} \
                             threads={threads}: {v}",
                            engine.name()
                        )
                    });
                    assert_eq!(
                        got.solutions,
                        reference.solutions,
                        "case {i} (seed {case_seed:#x}) engine {} {mode}: \
                         solutions at threads={threads} differ from threads=1",
                        engine.name()
                    );
                    assert_eq!(
                        got.complete,
                        reference.complete,
                        "case {i} (seed {case_seed:#x}) engine {} {mode}: \
                         completeness at threads={threads} differs from threads=1",
                        engine.name()
                    );
                    assert_eq!(
                        got.window,
                        reference.window,
                        "case {i} (seed {case_seed:#x}) engine {} {mode}: \
                         request counters at threads={threads} differ from \
                         threads=1",
                        engine.name()
                    );
                }
            }
        }
    }
}
