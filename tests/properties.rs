//! Randomized-but-deterministic tests on the core invariants:
//!
//! * solution-set algebra (join commutativity, left-join/anti-join
//!   partitioning, dedup idempotence),
//! * parser ↔ writer round-trips over randomly generated queries,
//! * the flagship federation property: however a random graph is
//!   *partitioned across endpoints*, every engine returns exactly the
//!   centralized result for random chain queries.
//!
//! Each test drives a seeded SplitMix64 generator through a fixed number
//! of cases, so failures reproduce from the case index alone. The default
//! per-test seeds below can be overridden through `LUSAIL_TEST_SEED`
//! (decimal or `0x`-hex) to replay a seed reported by the differential
//! harness or to widen coverage.

use lusail_baselines::FedX;
use lusail_benchdata::common::Rng;
use lusail_core::Lusail;
use lusail_endpoint::ExecOptions;
use lusail_endpoint::{FederatedEngine, Federation, LocalEndpoint};
use lusail_rdf::{Dictionary, Term, TermId};
use lusail_sparql::ast::{GroupPattern, PatternTerm, Query, TriplePattern};
use lusail_sparql::{parse_query, write_query, SolutionSet};
use lusail_store::TripleStore;
use lusail_testkit::seed_from_env;
use std::sync::Arc;

// ---------- solution-set algebra -------------------------------------------

fn rand_solutions(rng: &mut Rng, vars: &[&str]) -> SolutionSet {
    let width = vars.len();
    let n = rng.below(20);
    SolutionSet {
        vars: vars.iter().map(|s| s.to_string()).collect(),
        rows: (0..n)
            .map(|_| {
                (0..width)
                    .map(|_| {
                        if rng.chance(0.2) {
                            None
                        } else {
                            Some(TermId(rng.below(8) as u32))
                        }
                    })
                    .collect()
            })
            .collect(),
    }
}

#[test]
fn hash_join_is_commutative() {
    let mut rng = Rng::new(seed_from_env(0xA1));
    for case in 0..200 {
        let a = rand_solutions(&mut rng, &["x", "y"]);
        let b = rand_solutions(&mut rng, &["y", "z"]);
        let ab = a.hash_join(&b).canonicalize();
        let ba = b.hash_join(&a).canonicalize();
        assert_eq!(ab, ba, "case {case}");
    }
}

#[test]
fn join_with_empty_is_empty() {
    let mut rng = Rng::new(seed_from_env(0xA2));
    for case in 0..100 {
        let a = rand_solutions(&mut rng, &["x", "y"]);
        let empty = SolutionSet::empty(vec!["y".into(), "z".into()]);
        assert_eq!(a.hash_join(&empty).len(), 0, "case {case}");
    }
}

#[test]
fn left_join_preserves_left_rows() {
    let mut rng = Rng::new(seed_from_env(0xA3));
    for case in 0..200 {
        let a = rand_solutions(&mut rng, &["x", "y"]);
        let b = rand_solutions(&mut rng, &["y", "z"]);
        // Every left row appears at least once in the left join.
        let lj = a.left_join(&b);
        assert!(lj.len() >= a.len(), "case {case}");
        // And the left join contains the inner join.
        let inner = a.hash_join(&b);
        assert!(lj.len() >= inner.len(), "case {case}");
    }
}

#[test]
fn anti_join_and_semi_join_partition() {
    let mut rng = Rng::new(seed_from_env(0xA4));
    for case in 0..200 {
        let a = rand_solutions(&mut rng, &["x", "y"]);
        let b = rand_solutions(&mut rng, &["y"]);
        // Rows either have a compatible partner in b or they don't.
        let anti = a.anti_join(&b);
        let joined = a.hash_join(&b);
        // Every anti row is an original row.
        for row in &anti.rows {
            assert!(a.rows.contains(row), "case {case}");
        }
        // A row can't be in both the join (projected back) and the anti join.
        let joined_back = joined.project(&a.vars);
        for row in &anti.rows {
            assert!(
                !joined_back.rows.contains(row),
                "case {case}: row in both join and anti-join"
            );
        }
    }
}

#[test]
fn dedup_is_idempotent() {
    let mut rng = Rng::new(seed_from_env(0xA5));
    for case in 0..200 {
        let a = rand_solutions(&mut rng, &["x", "y"]);
        let mut once = a.clone();
        once.dedup();
        let mut twice = once.clone();
        twice.dedup();
        assert_eq!(once, twice, "case {case}");
    }
}

#[test]
fn canonicalize_is_stable() {
    let mut rng = Rng::new(seed_from_env(0xA6));
    for case in 0..200 {
        let a = rand_solutions(&mut rng, &["x", "y"]);
        let c1 = a.canonicalize();
        let c2 = c1.canonicalize();
        assert_eq!(c1, c2, "case {case}");
    }
}

// ---------- parser / writer round-trips -------------------------------------

/// A random (tiny) SPARQL query as text, built from a constrained grammar
/// so it is always valid.
fn rand_query_text(rng: &mut Rng) -> String {
    const VARS: [&str; 4] = ["?a", "?b", "?c", "?d"];
    const PREDS: [&str; 3] = ["<http://x/p>", "<http://x/q>", "a"];
    const TERMS: [&str; 5] = [
        "<http://x/e1>",
        "<http://x/e2>",
        "\"lit one\"",
        "\"v\"@en",
        "42",
    ];
    let n = 1 + rng.below(3);
    let mut q = String::from("SELECT ");
    if rng.chance(0.5) {
        q.push_str("DISTINCT ");
    }
    q.push_str("* WHERE { ");
    for _ in 0..n {
        let s = VARS[rng.below(VARS.len())];
        let p = PREDS[rng.below(PREDS.len())];
        let o = if rng.chance(0.4) {
            VARS[rng.below(VARS.len())]
        } else {
            TERMS[rng.below(TERMS.len())]
        };
        q.push_str(&format!("{s} {p} {o} . "));
    }
    q.push('}');
    if rng.chance(0.5) {
        q.push_str(&format!(" LIMIT {}", 1 + rng.below(9)));
    }
    q
}

#[test]
fn parse_write_parse_is_identity() {
    let mut rng = Rng::new(seed_from_env(0xB1));
    for case in 0..300 {
        let text = rand_query_text(&mut rng);
        let dict = Dictionary::new();
        let q1 = parse_query(&text, &dict).expect("generated query parses");
        let written = write_query(&q1, &dict);
        let q2 = parse_query(&written, &dict)
            .unwrap_or_else(|e| panic!("case {case}: round-trip failed: {e}\n{written}"));
        assert_eq!(q1, q2, "case {case}:\n{text}\n{written}");
    }
}

// ---------- store vs naive matcher ------------------------------------------

#[test]
fn store_scan_matches_naive_filter() {
    let mut rng = Rng::new(seed_from_env(0xC1));
    for case in 0..150 {
        let dict = Dictionary::shared();
        let mut st = TripleStore::new(Arc::clone(&dict));
        let id = |n: usize, kind: &str| dict.encode(&Term::iri(format!("http://x/{kind}{n}")));
        let mut naive = std::collections::BTreeSet::new();
        for _ in 0..rng.below(60) {
            let t = lusail_rdf::Triple::new(
                id(rng.below(6), "s"),
                id(rng.below(4), "p"),
                id(rng.below(6), "o"),
            );
            st.insert(t);
            naive.insert((t.s, t.p, t.o));
        }
        let qs = rng.chance(0.5).then(|| id(rng.below(6), "s"));
        let qp = rng.chance(0.5).then(|| id(rng.below(4), "p"));
        let qo = rng.chance(0.5).then(|| id(rng.below(6), "o"));
        let got: std::collections::BTreeSet<_> = st
            .matches(qs, qp, qo)
            .into_iter()
            .map(|t| (t.s, t.p, t.o))
            .collect();
        let want: std::collections::BTreeSet<_> = naive
            .iter()
            .filter(|(a, b, c)| {
                qs.is_none_or(|x| x == *a)
                    && qp.is_none_or(|x| x == *b)
                    && qo.is_none_or(|x| x == *c)
            })
            .copied()
            .collect();
        assert_eq!(got, want, "case {case}");
    }
}

// ---------- storage-backend scan/estimate equivalence ------------------------

/// The cross-backend storage contract (see `lusail_store::backend`):
/// for the same triples, the BTree and columnar backends must hand scan
/// callbacks the same triples *in the same order* on every one of the
/// eight bound/unbound access paths, honor early exit at the same point,
/// charge `rows_scanned` identically, and agree on `estimate` up to the
/// documented cap — the columnar estimate is always the exact match
/// count, and `btree_estimate == min(true_count, ESTIMATE_CAP)` on the
/// five range-walk shapes (it is exact on `(?, p, ?)` and the all-free
/// shape). Universes are sized so the cap genuinely binds in some cases;
/// the test asserts that coverage rather than hoping for it.
#[test]
fn backend_scans_and_estimates_agree() {
    use lusail_store::{BackendKind, StorageBackend, ESTIMATE_CAP};

    let mut rng = Rng::new(seed_from_env(0xBAC_E4D));
    let mut cap_bound_patterns = 0u64;
    let mut nonempty_scans = 0u64;
    for case in 0..60 {
        let dict = Dictionary::shared();
        // Small subject/predicate universes with a wider object universe:
        // single-bound paths like (s, ?, ?) can then exceed ESTIMATE_CAP
        // matches even though the store is a *set* of triples.
        let ns = 1 + rng.below(4);
        let np = 1 + rng.below(4);
        let no = 1 + rng.below(80);
        let node = |n: usize, dict: &Dictionary| dict.encode(&Term::iri(format!("http://g/n{n}")));
        let pred = |n: usize, dict: &Dictionary| dict.encode(&Term::iri(format!("http://g/p{n}")));
        let mut st = TripleStore::new(Arc::clone(&dict));
        for _ in 0..rng.below(400) {
            st.insert(lusail_rdf::Triple::new(
                node(rng.below(ns), &dict),
                pred(rng.below(np), &dict),
                node(rng.below(no), &dict),
            ));
        }
        // One deliberately dense subject: the full np × no grid hangs off
        // node 0, so subject-led paths exceed ESTIMATE_CAP whenever the
        // universe allows it (the store is a set — sparse random inserts
        // alone rarely pile more than the cap onto one run).
        for p in 0..np {
            for o in 0..no {
                st.insert(lusail_rdf::Triple::new(
                    node(0, &dict),
                    pred(p, &dict),
                    node(o, &dict),
                ));
            }
        }
        let backends: Vec<Box<dyn StorageBackend>> = {
            let copy = {
                let mut c = TripleStore::new(Arc::clone(&dict));
                let mut all = Vec::new();
                st.scan(None, None, None, |t| {
                    all.push(t);
                    true
                });
                for t in all {
                    c.insert(t);
                }
                c
            };
            vec![
                BackendKind::Btree.realize(st),
                BackendKind::Columns.realize(copy),
            ]
        };
        let (btree, columns) = (&backends[0], &backends[1]);
        assert_eq!(btree.len(), columns.len(), "case {case}: len diverged");

        for probe in 0..40 {
            // Constants range past each universe so absent terms occur in
            // every position; every bound/unbound combination arises.
            let qs = rng.chance(0.5).then(|| node(rng.below(ns + 2), &dict));
            let qp = rng.chance(0.5).then(|| pred(rng.below(np + 2), &dict));
            let qo = rng.chance(0.5).then(|| node(rng.below(no + 2), &dict));
            let ctx =
                |what: &str| format!("case {case} probe {probe} ({qs:?},{qp:?},{qo:?}): {what}");

            // Full scans: same triples, same order, same work charged.
            let before = (btree.rows_scanned(), columns.rows_scanned());
            let got_b = btree.matches(qs, qp, qo);
            let got_c = columns.matches(qs, qp, qo);
            assert_eq!(got_b, got_c, "{}", ctx("scan order/content diverged"));
            let scanned_b = btree.rows_scanned() - before.0;
            let scanned_c = columns.rows_scanned() - before.1;
            assert_eq!(
                scanned_b,
                got_b.len() as u64,
                "{}",
                ctx("btree rows_scanned")
            );
            assert_eq!(
                scanned_c,
                got_c.len() as u64,
                "{}",
                ctx("columns rows_scanned")
            );
            let true_count = got_b.len() as u64;
            if true_count > 0 {
                nonempty_scans += 1;
            }

            // Early exit: both backends stop at the same prefix, report
            // the same "stopped early" flag, and charge exactly the
            // prefix.
            if true_count > 0 {
                let k = 1 + rng.below(true_count as usize);
                for backend in [btree, columns] {
                    let before = backend.rows_scanned();
                    let mut seen = Vec::new();
                    let completed = backend.scan(qs, qp, qo, |t| {
                        seen.push(t);
                        seen.len() < k
                    });
                    assert!(
                        !completed || k == true_count as usize,
                        "{}",
                        ctx("early-exit flag")
                    );
                    assert_eq!(seen, got_b[..k], "{}", ctx("early-exit prefix"));
                    assert_eq!(
                        backend.rows_scanned() - before,
                        k as u64,
                        "{}",
                        ctx("early-exit rows_scanned")
                    );
                }
            }

            // Estimates: columnar is always exact; BTree is exact on the
            // predicate-only and all-free shapes and capped elsewhere.
            let est_b = btree.estimate(qs, qp, qo);
            let est_c = columns.estimate(qs, qp, qo);
            assert_eq!(
                est_c,
                true_count,
                "{}",
                ctx("columns estimate must be exact")
            );
            let btree_exact =
                (qs.is_none() && qo.is_none()) || (qs.is_none() && qp.is_none() && qo.is_none());
            if btree_exact {
                assert_eq!(
                    est_b,
                    true_count,
                    "{}",
                    ctx("btree estimate on exact shape")
                );
            } else {
                assert_eq!(
                    est_b,
                    true_count.min(ESTIMATE_CAP),
                    "{}",
                    ctx("btree estimate vs documented cap bound")
                );
            }
            if est_c > ESTIMATE_CAP && !btree_exact {
                cap_bound_patterns += 1;
            }
        }
    }
    // The contract's interesting half is vacuous if the cap never binds
    // or every scan is empty.
    assert!(
        cap_bound_patterns > 20 && nonempty_scans > 400,
        "coverage too thin: {cap_bound_patterns} cap-bound patterns, {nonempty_scans} nonempty scans"
    );
}

// ---------- the federation partition property --------------------------------

// Random graph, partitioned across endpoints **by subject** — the
// decentralized-RDF setting the paper targets, where every authority
// stores the triples of its own entities and interlinks are object
// references to remote entities. Chain queries over any such partition
// must return exactly the centralized result, for both Lusail and FedX.
//
// (Partitioning by *edge* instead can split one entity's adjacency list
// across endpoints; the paper's set-difference locality checks — like
// ours — cannot see cross-endpoint combinations of such split lists.
// That assumption is inherent to the algorithm and documented in
// DESIGN.md.)
#[test]
fn any_subject_partition_yields_centralized_results() {
    let mut rng = Rng::new(seed_from_env(0xF1));
    for case in 0..24 {
        let endpoints = 2 + rng.below(2);
        let chain_len = 2 + rng.below(2);
        let assignment_seed = rng.next_u64() % 1000;
        let dict = Dictionary::shared();
        let mut oracle = TripleStore::new(Arc::clone(&dict));
        let mut stores: Vec<TripleStore> = (0..endpoints)
            .map(|_| TripleStore::new(Arc::clone(&dict)))
            .collect();
        let node = |n: u32, dict: &Dictionary| dict.encode(&Term::iri(format!("http://g/n{n}")));
        let pred = |n: u32, dict: &Dictionary| dict.encode(&Term::iri(format!("http://g/p{n}")));
        // Each subject node gets a random *home* endpoint; all its triples
        // live there.
        let home = |n: u32| -> usize {
            let mut h = (n as u64 + 1).wrapping_mul(assignment_seed.wrapping_add(7));
            h = h
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((h >> 33) as usize) % endpoints
        };
        for _ in 0..1 + rng.below(79) {
            let (a, p, b) = (
                rng.below(12) as u32,
                rng.below(3) as u32,
                rng.below(12) as u32,
            );
            let t = lusail_rdf::Triple::new(node(a, &dict), pred(p, &dict), node(b, &dict));
            oracle.insert(t);
            stores[home(a)].insert(t);
        }
        let mut fed = Federation::new(Arc::clone(&dict));
        for (i, st) in stores.into_iter().enumerate() {
            fed.add(Arc::new(LocalEndpoint::new(format!("ep{i}"), st)));
        }

        // Chain query ?v0 p0 ?v1 p1 ?v2 …
        let mut triples = Vec::new();
        for i in 0..chain_len {
            triples.push(TriplePattern::new(
                PatternTerm::Var(format!("v{i}")),
                PatternTerm::Const(pred((i % 3) as u32, &dict)),
                PatternTerm::Var(format!("v{}", i + 1)),
            ));
        }
        let query = Query::select_all(GroupPattern::bgp(triples));
        let expected = lusail_store::eval::evaluate(&oracle, &query).canonicalize();

        let lusail = Lusail::default();
        assert_eq!(
            lusail
                .run_with(&fed, &query, &ExecOptions::default())
                .unwrap()
                .solutions
                .canonicalize(),
            expected,
            "case {case}: Lusail differs from centralized evaluation"
        );
        let fedx = FedX::default();
        assert_eq!(
            fedx.run_with(&fed, &query, &ExecOptions::default())
                .unwrap()
                .solutions
                .canonicalize(),
            expected,
            "case {case}: FedX differs from centralized evaluation"
        );
    }
}

// ---------- statistics soundness --------------------------------------------

/// Soundness of probe elision: whenever the offline characteristic-set
/// statistics give a *conclusive* answer for a triple pattern, that
/// answer must equal what the wire probe returns against the very store
/// the statistics were built from — `ask_pattern` vs an ASK request,
/// `count_pattern` vs a COUNT request. Inconclusive (`None`) is always
/// acceptable (the planner falls back to the wire), but a conclusive lie
/// would silently change query results, so exactness is the bar. The
/// generator deliberately produces repeated variables, constants in
/// every position, absent predicates, and empty stores — the shapes the
/// decidability rules in `EndpointStats::count_pattern` must refuse or
/// answer exactly.
#[test]
fn conclusive_stats_answers_match_wire_probes() {
    use lusail_endpoint::SparqlEndpoint;
    use lusail_store::EndpointStats;

    let mut rng = Rng::new(seed_from_env(0x57A7_0B0B));
    let (mut asks, mut counts) = (0u64, 0u64);
    let (mut seen_true, mut seen_false) = (false, false);
    for case in 0..120 {
        let dict = Dictionary::shared();
        let mut st = TripleStore::new(Arc::clone(&dict));
        let node = |n: usize, dict: &Dictionary| dict.encode(&Term::iri(format!("http://g/n{n}")));
        let pred = |n: usize, dict: &Dictionary| dict.encode(&Term::iri(format!("http://g/p{n}")));
        // `below(40)` includes 0, so empty stores are exercised too.
        for _ in 0..rng.below(40) {
            st.insert(lusail_rdf::Triple::new(
                node(rng.below(10), &dict),
                pred(rng.below(4), &dict),
                node(rng.below(10), &dict),
            ));
        }
        let stats = EndpointStats::build(&st);
        let ep = LocalEndpoint::new("e", st);

        const VARS: [&str; 3] = ["a", "b", "c"];
        for probe in 0..40 {
            // Constants range past the data universe so absent predicates
            // and unmatched nodes occur; variables repeat across positions.
            let position = |rng: &mut Rng, is_pred: bool, dict: &Dictionary| {
                if rng.chance(0.5) {
                    PatternTerm::Var(VARS[rng.below(VARS.len())].to_string())
                } else if is_pred {
                    PatternTerm::Const(pred(rng.below(6), dict))
                } else {
                    PatternTerm::Const(node(rng.below(12), dict))
                }
            };
            let tp = TriplePattern::new(
                position(&mut rng, false, &dict),
                position(&mut rng, true, &dict),
                position(&mut rng, false, &dict),
            );
            let bgp = || GroupPattern::bgp(vec![tp.clone()]);
            if let Some(local) = stats.ask_pattern(&tp) {
                let wire = ep.ask(&Query::ask(bgp())).unwrap();
                assert_eq!(
                    local, wire,
                    "case {case} probe {probe}: conclusive ASK diverged for {tp:?}"
                );
                asks += 1;
                seen_true |= local;
                seen_false |= !local;
            }
            if let Some(local) = stats.count_pattern(&tp) {
                let wire = ep.count(&Query::count(bgp())).unwrap();
                assert_eq!(
                    local, wire,
                    "case {case} probe {probe}: conclusive COUNT diverged for {tp:?}"
                );
                counts += 1;
            }
        }
    }
    // The property is vacuous if the rules never conclude, or conclude
    // only one way.
    assert!(
        asks > 500 && counts > 500 && seen_true && seen_false,
        "coverage too thin: {asks} asks, {counts} counts, true {seen_true}, false {seen_false}"
    );
}

// ---------- retry backoff ---------------------------------------------------

/// The jittered exponential backoff schedule is a pure function of
/// `(policy, attempt, nonce)`: deterministic (same inputs, same delay),
/// jitter-bounded around the capped exponential base, monotone and
/// exactly capped when jitter is off, and bit-identical across platforms
/// (SplitMix64 plus IEEE-754 arithmetic — pinned below).
#[test]
fn backoff_schedule_is_deterministic_bounded_and_capped() {
    use lusail_endpoint::RequestPolicy;
    use std::time::Duration;

    let policy = RequestPolicy::default();
    let mut rng = Rng::new(seed_from_env(0xBAC0FF));
    for case in 0..500 {
        let attempt = rng.below(64) as u32;
        let nonce = rng.next_u64();
        let d = policy.backoff_for(attempt, nonce);
        assert_eq!(
            d,
            policy.backoff_for(attempt, nonce),
            "case {case}: same (attempt, nonce) must reproduce the delay"
        );
        let base =
            policy.base_backoff.as_secs_f64() * policy.backoff_multiplier.powi(attempt as i32);
        let capped = base.min(policy.max_backoff.as_secs_f64());
        let got = d.as_secs_f64();
        assert!(
            got >= capped * (1.0 - policy.jitter) - 1e-12
                && got <= capped * (1.0 + policy.jitter) + 1e-12,
            "case {case}: delay {got} outside jitter bounds around {capped}"
        );
    }

    // Jitter off: the schedule is non-decreasing and saturates exactly at
    // the cap.
    let flat = RequestPolicy {
        jitter: 0.0,
        ..RequestPolicy::default()
    };
    let mut prev = Duration::ZERO;
    for attempt in 0..64 {
        let d = flat.backoff_for(attempt, 12345);
        assert!(d >= prev, "attempt {attempt}: schedule decreased");
        assert!(d <= flat.max_backoff, "attempt {attempt}: cap exceeded");
        prev = d;
    }
    assert_eq!(prev, flat.max_backoff, "schedule never reached the cap");

    // Cross-platform pin: these exact nanosecond delays must come out on
    // every platform, or seeded reproductions stop replaying elsewhere.
    let pinned: Vec<u128> = (0..4)
        .map(|i| policy.backoff_for(i, 0xC0FFEE).as_nanos())
        .collect();
    assert_eq!(
        pinned,
        vec![11_701_438u128, 23_402_876, 46_805_751, 93_611_503]
    );
}

// ---------- MQO signature soundness -----------------------------------------

/// Soundness of the batch memo's sharing key: whenever two subqueries —
/// possibly decomposed from *different* queries — have equal
/// [`subquery_signature`](lusail_core::subquery_signature)s, evaluating
/// them standalone must yield multiset-equal relations. This is the
/// safety condition for [`Lusail::execute_batch`] reusing a memoized
/// relation across tenants: an unsound signature would silently hand one
/// tenant another tenant's (different) rows. The generator produces, per
/// case, the seeded query itself plus a triple-order permutation of it —
/// the signature normalizes pattern order, so permuted decompositions
/// must collide and agree; identical queries (the cross-tenant shape the
/// server batches) collide on every subquery. Replay any reported seed
/// with `LUSAIL_TEST_SEED`.
#[test]
fn equal_subquery_signatures_imply_multiset_equal_relations() {
    use lusail_core::subquery_signature;
    use lusail_testkit::{Case, FaultSpec, GenConfig};

    let mut rng = Rng::new(seed_from_env(0x516_A7B5));
    let config = GenConfig::default();
    let mut collisions = 0u64;
    let mut cross_query_collisions = 0u64;
    let mut planned_cases = 0u64;
    for case_no in 0..60 {
        let seed = rng.next_u64();
        let case = Case::generate(seed, &config);
        let (fed, _endpoints) = case.federation(&FaultSpec::default());
        let engine = Lusail::default();

        // Variant 0: the query as generated. Variant 1: the same query
        // with its triple patterns in reversed order (decomposition may
        // group/order differently; signatures must not care). Variant 2:
        // an identical resubmission — the cross-tenant sharing shape.
        let mut permuted = case.query.clone();
        permuted.pattern.triples.reverse();
        let variants = [case.query.clone(), permuted, case.query.clone()];

        // signature -> (variant index, sorted projection, canonical rows)
        let mut memo: std::collections::HashMap<String, (usize, Vec<String>, SolutionSet)> =
            std::collections::HashMap::new();
        let mut any_planned = false;
        for (vi, query) in variants.iter().enumerate() {
            let Some(subqueries) = engine.plan_subqueries(&fed, query) else {
                continue;
            };
            any_planned = true;
            for sq in &subqueries {
                let sig = subquery_signature(sq);
                // Compare relations over the signature's own (sorted)
                // projection: signature-equal subqueries project the same
                // variable set, possibly discovered in different orders.
                let mut proj = sq.projection.clone();
                proj.sort();
                let rel = engine
                    .evaluate_subquery(&fed, sq)
                    .project(&proj)
                    .canonicalize();
                match memo.get(&sig) {
                    Some((prev_vi, prev_proj, prev_rel)) => {
                        collisions += 1;
                        if *prev_vi != vi {
                            cross_query_collisions += 1;
                        }
                        assert_eq!(
                            (prev_proj, prev_rel),
                            (&proj, &rel),
                            "case {case_no} (seed {seed:#x}): signature {sig} maps to \
                             different relations — sharing would be unsound"
                        );
                    }
                    None => {
                        memo.insert(sig, (vi, proj, rel));
                    }
                }
            }
        }
        if any_planned {
            planned_cases += 1;
        }
    }
    // The property is vacuous without real collisions, and the interesting
    // half needs collisions across *distinct submissions*.
    assert!(
        planned_cases >= 10 && collisions >= 20 && cross_query_collisions >= 10,
        "coverage too thin: {planned_cases} planned cases, {collisions} collisions, \
         {cross_query_collisions} cross-query"
    );
}

// ---------- adaptive VALUES batching ---------------------------------------

/// Batching a bound subquery's bindings into `VALUES` blocks — at any
/// block size, fixed or adaptive — must yield exactly the same solution
/// multiset as shipping all bindings in one unbatched block. Blocks
/// partition the *distinct* values of one variable, so no split may ever
/// lose or duplicate a row.
#[test]
fn adaptive_values_batching_preserves_the_solution_multiset() {
    use lusail_core::{DelayPolicy, LusailConfig, QueryTrace, TraceSink};

    let mut rng = Rng::new(seed_from_env(0xADA7));
    let mut multi_block_runs = 0usize;
    for case_no in 0..30 {
        // A chain split over two endpoints: A holds ?s -p-> ?m edges into
        // a small midpoint pool, B fans each midpoint out into 0..6
        // ?m -q-> ?n edges — so the q-side is usually the heavier, delayed
        // subquery and gets bound with VALUES blocks over ?m.
        let dict = Dictionary::shared();
        let mut a = TripleStore::new(Arc::clone(&dict));
        let mut b = TripleStore::new(Arc::clone(&dict));
        let subjects = 5 + rng.below(40);
        let mids = 2 + rng.below(10);
        for i in 0..subjects {
            let s = Term::iri(format!("http://a/s{i}"));
            let m = Term::iri(format!("http://m/v{}", rng.below(mids)));
            a.insert_terms(&s, &Term::iri("http://x/p"), &m);
        }
        for j in 0..mids {
            let m = Term::iri(format!("http://m/v{j}"));
            for k in 0..rng.below(7) {
                b.insert_terms(
                    &m,
                    &Term::iri("http://x/q"),
                    &Term::int((j * 10 + k) as i64),
                );
            }
        }
        let mut fed = Federation::new(Arc::clone(&dict));
        fed.add(Arc::new(LocalEndpoint::new("A", a)));
        fed.add(Arc::new(LocalEndpoint::new("B", b)));
        let q = parse_query(
            "SELECT ?s ?m ?n WHERE { ?s <http://x/p> ?m . ?m <http://x/q> ?n }",
            &dict,
        )
        .unwrap();

        let run = |block_size: usize, adaptive: bool| {
            let engine = Lusail::new(LusailConfig {
                block_size,
                adaptive_values: adaptive,
                // Delay past the mean so the heavier subquery really takes
                // the bound-subquery path (μ+σ never fires with only two).
                delay_policy: DelayPolicy::Mu,
                ..LusailConfig::default()
            });
            let sink = TraceSink::enabled();
            let r = engine
                .execute_with(&fed, &q, &ExecOptions::default().with_trace(sink.clone()))
                .unwrap();
            assert!(r.complete, "case {case_no}: clean run must be complete");
            let (blocks, _) = QueryTrace::from_sink(&sink).values_batch_totals();
            (r.solutions.canonicalize(), blocks)
        };

        // Reference: one unbatched block carrying every binding.
        let (reference, _) = run(1_000_000, false);
        for (block_size, adaptive) in [(1, false), (1, true), (7, true), (100, true)] {
            let (sols, blocks) = run(block_size, adaptive);
            assert_eq!(
                sols, reference,
                "case {case_no}: block_size {block_size} adaptive {adaptive} \
                 changed the solution multiset"
            );
            if blocks > 1 {
                multi_block_runs += 1;
            }
        }
    }
    // The property is vacuous if no run ever split its bindings.
    assert!(
        multi_block_runs > 0,
        "no run ever exercised multi-block VALUES batching"
    );
}
