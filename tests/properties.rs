//! Property-based tests on the core invariants:
//!
//! * solution-set algebra (join commutativity, left-join/anti-join
//!   partitioning, dedup idempotence),
//! * parser ↔ writer round-trips over randomly generated queries,
//! * the flagship federation property: however a random graph is
//!   *partitioned across endpoints*, every engine returns exactly the
//!   centralized result for random chain/star queries.

use lusail_baselines::FedX;
use lusail_core::Lusail;
use lusail_endpoint::{FederatedEngine, Federation, LocalEndpoint};
use lusail_rdf::{Dictionary, Term, TermId};
use lusail_sparql::ast::{GroupPattern, PatternTerm, Query, TriplePattern};
use lusail_sparql::{parse_query, write_query, SolutionSet};
use lusail_store::TripleStore;
use proptest::prelude::*;
use std::sync::Arc;

// ---------- solution-set algebra -------------------------------------------

fn arb_solutions(vars: Vec<&'static str>) -> impl Strategy<Value = SolutionSet> {
    let width = vars.len();
    let vars: Vec<String> = vars.into_iter().map(|s| s.to_string()).collect();
    proptest::collection::vec(
        proptest::collection::vec(proptest::option::of(0u32..8), width),
        0..20,
    )
    .prop_map(move |rows| SolutionSet {
        vars: vars.clone(),
        rows: rows
            .into_iter()
            .map(|r| r.into_iter().map(|c| c.map(TermId)).collect())
            .collect(),
    })
}

proptest! {
    #[test]
    fn hash_join_is_commutative(
        a in arb_solutions(vec!["x", "y"]),
        b in arb_solutions(vec!["y", "z"]),
    ) {
        let ab = a.hash_join(&b).canonicalize();
        let ba = b.hash_join(&a).canonicalize();
        prop_assert_eq!(ab, ba);
    }

    #[test]
    fn join_with_empty_is_empty(a in arb_solutions(vec!["x", "y"])) {
        let empty = SolutionSet::empty(vec!["y".into(), "z".into()]);
        prop_assert_eq!(a.hash_join(&empty).len(), 0);
    }

    #[test]
    fn left_join_preserves_left_rows(
        a in arb_solutions(vec!["x", "y"]),
        b in arb_solutions(vec!["y", "z"]),
    ) {
        // Every left row appears at least once in the left join.
        let lj = a.left_join(&b);
        prop_assert!(lj.len() >= a.len());
        // And the left join contains the inner join.
        let inner = a.hash_join(&b);
        prop_assert!(lj.len() >= inner.len());
    }

    #[test]
    fn anti_join_and_semi_join_partition(
        a in arb_solutions(vec!["x", "y"]),
        b in arb_solutions(vec!["y"]),
    ) {
        // Rows either have a compatible partner in b or they don't.
        let anti = a.anti_join(&b);
        let joined = a.hash_join(&b);
        // Every anti row is an original row.
        for row in &anti.rows {
            prop_assert!(a.rows.contains(row));
        }
        // A row can't be in both the join (projected back) and the anti join.
        let joined_back = joined.project(&a.vars);
        for row in &anti.rows {
            prop_assert!(!joined_back.rows.contains(row),
                "row in both join and anti-join");
        }
    }

    #[test]
    fn dedup_is_idempotent(a in arb_solutions(vec!["x", "y"])) {
        let mut once = a.clone();
        once.dedup();
        let mut twice = once.clone();
        twice.dedup();
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn canonicalize_is_stable(a in arb_solutions(vec!["x", "y"])) {
        let c1 = a.canonicalize();
        let c2 = c1.canonicalize();
        prop_assert_eq!(c1, c2);
    }
}

// ---------- parser / writer round-trips -------------------------------------

/// A random (tiny) SPARQL query as text, built from a constrained grammar
/// so it is always valid.
fn arb_query_text() -> impl Strategy<Value = String> {
    let var = proptest::sample::select(vec!["?a", "?b", "?c", "?d"]);
    let term = prop_oneof![
        Just("<http://x/e1>".to_string()),
        Just("<http://x/e2>".to_string()),
        Just("\"lit one\"".to_string()),
        Just("\"v\"@en".to_string()),
        Just("42".to_string()),
        proptest::sample::select(vec!["?a", "?b", "?c", "?d"]).prop_map(|v| v.to_string()),
    ];
    let pred = prop_oneof![
        Just("<http://x/p>".to_string()),
        Just("<http://x/q>".to_string()),
        Just("a".to_string()),
    ];
    let triple = (var, pred, term).prop_map(|(s, p, o)| format!("{s} {p} {o} ."));
    (
        proptest::collection::vec(triple, 1..4),
        proptest::bool::ANY,
        proptest::option::of(1usize..10),
    )
        .prop_map(|(triples, distinct, limit)| {
            let mut q = String::from("SELECT ");
            if distinct {
                q.push_str("DISTINCT ");
            }
            q.push_str("* WHERE { ");
            for t in &triples {
                q.push_str(t);
                q.push(' ');
            }
            q.push('}');
            if let Some(l) = limit {
                q.push_str(&format!(" LIMIT {l}"));
            }
            q
        })
}

proptest! {
    #[test]
    fn parse_write_parse_is_identity(text in arb_query_text()) {
        let dict = Dictionary::new();
        let q1 = parse_query(&text, &dict).expect("generated query parses");
        let written = write_query(&q1, &dict);
        let q2 = parse_query(&written, &dict)
            .unwrap_or_else(|e| panic!("round-trip failed: {e}\n{written}"));
        prop_assert_eq!(q1, q2);
    }
}

// ---------- store vs naive matcher ------------------------------------------

proptest! {
    #[test]
    fn store_scan_matches_naive_filter(
        triples in proptest::collection::vec((0u32..6, 0u32..4, 0u32..6), 0..60),
        s in proptest::option::of(0u32..6),
        p in proptest::option::of(0u32..4),
        o in proptest::option::of(0u32..6),
    ) {
        let dict = Dictionary::shared();
        let mut st = TripleStore::new(Arc::clone(&dict));
        let id = |n: u32, kind: &str| dict.encode(&Term::iri(format!("http://x/{kind}{n}")));
        let mut naive = std::collections::BTreeSet::new();
        for (a, b, c) in triples {
            let t = lusail_rdf::Triple::new(id(a, "s"), id(b, "p"), id(c, "o"));
            st.insert(t);
            naive.insert((t.s, t.p, t.o));
        }
        let qs = s.map(|n| id(n, "s"));
        let qp = p.map(|n| id(n, "p"));
        let qo = o.map(|n| id(n, "o"));
        let got: std::collections::BTreeSet<_> = st
            .matches(qs, qp, qo)
            .into_iter()
            .map(|t| (t.s, t.p, t.o))
            .collect();
        let want: std::collections::BTreeSet<_> = naive
            .iter()
            .filter(|(a, b, c)| {
                qs.is_none_or(|x| x == *a)
                    && qp.is_none_or(|x| x == *b)
                    && qo.is_none_or(|x| x == *c)
            })
            .copied()
            .collect();
        prop_assert_eq!(got, want);
    }
}

// ---------- the federation partition property --------------------------------

// Random graph, partitioned across endpoints **by subject** — the
// decentralized-RDF setting the paper targets, where every authority
// stores the triples of its own entities and interlinks are object
// references to remote entities. Chain queries over any such partition
// must return exactly the centralized result, for both Lusail and FedX.
//
// (Partitioning by *edge* instead can split one entity's adjacency list
// across endpoints; the paper's set-difference locality checks — like
// ours — cannot see cross-endpoint combinations of such split lists.
// That assumption is inherent to the algorithm and documented in
// DESIGN.md.)
proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    #[test]
    fn any_subject_partition_yields_centralized_results(
        edges in proptest::collection::vec((0u32..12, 0u32..3, 0u32..12), 1..80),
        assignment_seed in 0u64..1000,
        endpoints in 2usize..4,
        chain_len in 2usize..4,
    ) {
        let dict = Dictionary::shared();
        let mut oracle = TripleStore::new(Arc::clone(&dict));
        let mut stores: Vec<TripleStore> = (0..endpoints)
            .map(|_| TripleStore::new(Arc::clone(&dict)))
            .collect();
        let node = |n: u32, dict: &Dictionary| dict.encode(&Term::iri(format!("http://g/n{n}")));
        let pred = |n: u32, dict: &Dictionary| dict.encode(&Term::iri(format!("http://g/p{n}")));
        // Each subject node gets a random *home* endpoint; all its triples
        // live there.
        let home = |n: u32| -> usize {
            let mut h = (n as u64 + 1).wrapping_mul(assignment_seed.wrapping_add(7));
            h = h.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((h >> 33) as usize) % endpoints
        };
        for (a, p, b) in &edges {
            let t = lusail_rdf::Triple::new(node(*a, &dict), pred(*p, &dict), node(*b, &dict));
            oracle.insert(t);
            stores[home(*a)].insert(t);
        }
        let mut fed = Federation::new(Arc::clone(&dict));
        for (i, st) in stores.into_iter().enumerate() {
            fed.add(Arc::new(LocalEndpoint::new(format!("ep{i}"), st)));
        }

        // Chain query ?v0 p0 ?v1 p1 ?v2 …
        let mut triples = Vec::new();
        for i in 0..chain_len {
            triples.push(TriplePattern::new(
                PatternTerm::Var(format!("v{i}")),
                PatternTerm::Const(pred((i % 3) as u32, &dict)),
                PatternTerm::Var(format!("v{}", i + 1)),
            ));
        }
        let query = Query::select_all(GroupPattern::bgp(triples));
        let expected = lusail_store::eval::evaluate(&oracle, &query).canonicalize();

        let lusail = Lusail::default();
        prop_assert_eq!(
            lusail.run(&fed, &query).canonicalize(),
            expected.clone(),
            "Lusail differs from centralized evaluation"
        );
        let fedx = FedX::default();
        prop_assert_eq!(
            fedx.run(&fed, &query).canonicalize(),
            expected,
            "FedX differs from centralized evaluation"
        );
    }
}
