//! The deprecated pre-`ExecOptions` entry points (`run`, `run_traced`,
//! `execute_traced`) stay as thin shims for one release cycle so
//! downstream callers migrate on their own schedule. This suite is the
//! only in-repo caller allowed to use them: it pins that every shim
//! forwards to the options-carrying entry point unchanged — same rows,
//! same completeness, and (for the traced shims) a trace that still ends
//! in its query-finished event.
#![allow(deprecated)]

use lusail_baselines::FedX;
use lusail_core::{Lusail, QueryTrace, TraceSink};
use lusail_endpoint::{ExecOptions, FederatedEngine, Federation, LocalEndpoint};
use lusail_rdf::{Dictionary, Term};
use lusail_sparql::parse_query;
use lusail_store::TripleStore;
use std::sync::Arc;

fn two_endpoint_federation() -> (Federation, lusail_sparql::Query) {
    let dict = Dictionary::shared();
    let p = Term::iri("http://x/p");
    let q = Term::iri("http://x/q");
    let mut a = TripleStore::new(Arc::clone(&dict));
    let mut b = TripleStore::new(Arc::clone(&dict));
    for i in 0..8 {
        let s = Term::iri(format!("http://x/s{i}"));
        let m = Term::iri(format!("http://x/m{i}"));
        let o = Term::iri(format!("http://x/o{i}"));
        a.insert_terms(&s, &p, &m);
        if i % 2 == 0 {
            b.insert_terms(&m, &q, &o);
        }
    }
    let mut fed = Federation::new(Arc::clone(&dict));
    fed.add(Arc::new(LocalEndpoint::new("A", a)));
    fed.add(Arc::new(LocalEndpoint::new("B", b)));
    let query = parse_query(
        "SELECT ?s ?o WHERE { ?s <http://x/p> ?m . ?m <http://x/q> ?o }",
        &dict,
    )
    .unwrap();
    (fed, query)
}

#[test]
fn deprecated_run_matches_run_with_defaults() {
    let (fed, query) = two_endpoint_federation();
    for engine in [
        Box::new(Lusail::default()) as Box<dyn FederatedEngine>,
        Box::new(FedX::default()),
    ] {
        let via_shim = engine.run(&fed, &query).unwrap();
        let via_options = engine
            .run_with(&fed, &query, &ExecOptions::default())
            .unwrap();
        assert_eq!(
            via_shim.solutions.canonicalize(),
            via_options.solutions.canonicalize(),
            "{}: run() shim diverged from run_with(default)",
            engine.engine_name()
        );
        assert_eq!(via_shim.complete, via_options.complete);
    }
}

#[test]
fn deprecated_run_traced_still_traces() {
    let (fed, query) = two_endpoint_federation();
    for engine in [
        Box::new(Lusail::default()) as Box<dyn FederatedEngine>,
        Box::new(FedX::default()),
    ] {
        let sink = TraceSink::enabled();
        let outcome = engine.run_traced(&fed, &query, &sink).unwrap();
        let trace = QueryTrace::from_sink(&sink);
        assert!(
            trace.finish_index().is_some(),
            "{}: run_traced() shim lost the query-finished event",
            engine.engine_name()
        );
        assert_eq!(outcome.solutions.len(), 4);
    }
}

#[test]
fn deprecated_execute_traced_matches_execute_with() {
    let (fed, query) = two_endpoint_federation();
    let engine = Lusail::default();
    let sink = TraceSink::enabled();
    let via_shim = engine.execute_traced(&fed, &query, &sink).unwrap();
    let via_options = engine
        .execute_with(
            &fed,
            &query,
            &ExecOptions::default().with_trace(TraceSink::enabled()),
        )
        .unwrap();
    assert_eq!(
        via_shim.solutions.canonicalize(),
        via_options.solutions.canonicalize()
    );
    let fedx = FedX::default();
    let sink = TraceSink::enabled();
    let shim = fedx.execute_traced(&fed, &query, &sink).unwrap();
    assert_eq!(shim.solutions.len(), 4);
    assert!(QueryTrace::from_sink(&sink).finish_index().is_some());
}
