//! Pinned-plan tests for store-side triple-pattern reordering.
//!
//! The greedy planner in `lusail-store` orders BGP patterns by
//! (unbound-position count, index-estimated cardinality). These tests pin
//! the chosen orders on the deterministic LUBM fixture — a plan change is
//! a deliberate decision, not drift — and assert the work the ordering is
//! supposed to save: `rows_scanned` strictly decreases against the
//! textual-order baseline on the multi-pattern LUBM queries, and the
//! degenerate all-unbound scan does not regress.

use lusail_benchdata::common::Workload;
use lusail_benchdata::lubm::{generate, LubmConfig};
use lusail_sparql::parse_query;
use lusail_store::eval::{evaluate, plan_bgp_order};

/// The oracle union store doubles as a single big endpoint here; the
/// planner only needs a store with realistic index statistics.
fn lubm_workload() -> Workload {
    generate(&LubmConfig::new(3))
}

#[test]
fn pinned_lubm_plan_orders() {
    let w = lubm_workload();
    let oracle = &w.oracle;
    // Q1: the planner opens with `?y a ub:University` — three universities
    // is by far the smallest index range — then grows the bound set
    // through departments before touching the 200+-row student patterns.
    let q1 = &w.query("Q1").query;
    assert_eq!(
        plan_bgp_order(oracle, &q1.pattern.triples, &[]),
        vec![1, 2, 4, 0, 3, 5],
        "Q1 plan changed — if intentional, re-pin this order"
    );
    // Q4: the capped type-pattern estimate (64) wins the opening, then
    // `?y ub:doctoralDegreeFrom ?u` (45 rows) beats the big chain
    // patterns; fully-bound leftovers close the plan.
    let q4 = &w.query("Q4").query;
    assert_eq!(
        plan_bgp_order(oracle, &q4.pattern.triples, &[]),
        vec![0, 1, 4, 2, 3, 5],
        "Q4 plan changed — if intentional, re-pin this order"
    );
}

#[test]
fn reordering_strictly_reduces_rows_scanned_on_lubm() {
    let w = lubm_workload();
    let oracle = &w.oracle;
    for name in ["Q1", "Q2", "Q4"] {
        let query = &w.query(name).query;

        oracle.set_reorder(false);
        let before = oracle.rows_scanned();
        let unordered = evaluate(oracle, query).canonicalize();
        let unordered_scans = oracle.rows_scanned() - before;

        oracle.set_reorder(true);
        let before = oracle.rows_scanned();
        let ordered = evaluate(oracle, query).canonicalize();
        let ordered_scans = oracle.rows_scanned() - before;

        assert_eq!(ordered, unordered, "{name}: reordering changed results");
        assert!(
            ordered_scans < unordered_scans,
            "{name}: ordered evaluation scanned {ordered_scans} rows, \
             not below the textual-order baseline {unordered_scans}"
        );
    }
}

/// Columnar estimates may only *help* the planner. The columnar backend
/// feeds `plan_bgp_order` exact run-length counts where the BTree backend
/// caps its index walk at `ESTIMATE_CAP`, so on the pinned LUBM queries a
/// columnar plan must never scan more rows than the BTree plan for
/// byte-identical results — store-level first, then at the engine level,
/// where a whole federation materialized on columns must answer with the
/// same solutions and no more wire requests than its BTree twin.
#[test]
fn columnar_estimates_never_plan_worse_than_btree() {
    use lusail_core::Lusail;
    use lusail_endpoint::{ExecOptions, FederatedEngine, SparqlEndpoint};
    use lusail_store::{BackendKind, ColumnStore, StorageBackend};

    let w = lubm_workload();
    let btree: &dyn StorageBackend = &w.oracle;
    let columns = ColumnStore::from_store(&w.oracle);
    let columns: &dyn StorageBackend = &columns;
    btree.set_reorder(true);
    columns.set_reorder(true);
    for name in ["Q1", "Q2", "Q4"] {
        let query = &w.query(name).query;

        let before = btree.rows_scanned();
        let on_btree = evaluate(btree, query).canonicalize();
        let btree_scans = btree.rows_scanned() - before;

        let before = columns.rows_scanned();
        let on_columns = evaluate(columns, query).canonicalize();
        let columns_scans = columns.rows_scanned() - before;

        assert_eq!(on_columns, on_btree, "{name}: backends disagree on results");
        assert!(
            columns_scans <= btree_scans,
            "{name}: columnar plan scanned {columns_scans} rows, more than \
             the BTree plan's {btree_scans} — exact estimates made things worse"
        );
    }

    // Engine level: the same federation materialized on each backend.
    let fed_b = lubm_workload();
    let fed_c = generate(&LubmConfig {
        backend: BackendKind::Columns,
        ..LubmConfig::new(3)
    });
    let engine = Lusail::default();
    for name in ["Q1", "Q2", "Q4"] {
        let mut windows = Vec::new();
        for w in [&fed_b, &fed_c] {
            let before = w
                .endpoints
                .iter()
                .fold(lusail_endpoint::StatsSnapshot::default(), |acc, e| {
                    acc.plus(&e.stats_snapshot())
                });
            let r = engine
                .run_with(&w.federation, &w.query(name).query, &ExecOptions::default())
                .unwrap();
            let window = w
                .endpoints
                .iter()
                .fold(lusail_endpoint::StatsSnapshot::default(), |acc, e| {
                    acc.plus(&e.stats_snapshot())
                })
                .since(&before);
            windows.push((r.solutions.canonicalize(), window));
        }
        let (btree_sols, btree_win) = &windows[0];
        let (columns_sols, columns_win) = &windows[1];
        assert_eq!(
            columns_sols, btree_sols,
            "{name}: federation results diverged"
        );
        assert!(
            columns_win.total_requests() <= btree_win.total_requests(),
            "{name}: columnar federation issued {} requests, more than the \
             BTree federation's {}",
            columns_win.total_requests(),
            btree_win.total_requests()
        );
        assert!(
            columns_win.rows_scanned <= btree_win.rows_scanned,
            "{name}: columnar federation scanned {} rows, more than the \
             BTree federation's {}",
            columns_win.rows_scanned,
            btree_win.rows_scanned
        );
    }
}

#[test]
fn all_unbound_scan_does_not_regress() {
    let w = lubm_workload();
    let oracle = &w.oracle;
    let query = parse_query("SELECT * WHERE { ?s ?p ?o }", oracle.dict()).unwrap();
    assert_eq!(plan_bgp_order(oracle, &query.pattern.triples, &[]), vec![0]);

    oracle.set_reorder(false);
    let before = oracle.rows_scanned();
    let unordered = evaluate(oracle, &query).canonicalize();
    let unordered_scans = oracle.rows_scanned() - before;

    oracle.set_reorder(true);
    let before = oracle.rows_scanned();
    let ordered = evaluate(oracle, &query).canonicalize();
    let ordered_scans = oracle.rows_scanned() - before;

    assert_eq!(ordered, unordered);
    assert_eq!(
        ordered_scans, unordered_scans,
        "a single all-unbound pattern has nothing to reorder — scan \
         counts must match exactly"
    );
}
