//! Pinned-plan tests for store-side triple-pattern reordering.
//!
//! The greedy planner in `lusail-store` orders BGP patterns by
//! (unbound-position count, index-estimated cardinality). These tests pin
//! the chosen orders on the deterministic LUBM fixture — a plan change is
//! a deliberate decision, not drift — and assert the work the ordering is
//! supposed to save: `rows_scanned` strictly decreases against the
//! textual-order baseline on the multi-pattern LUBM queries, and the
//! degenerate all-unbound scan does not regress.

use lusail_benchdata::common::Workload;
use lusail_benchdata::lubm::{generate, LubmConfig};
use lusail_sparql::parse_query;
use lusail_store::eval::{evaluate, plan_bgp_order};

/// The oracle union store doubles as a single big endpoint here; the
/// planner only needs a store with realistic index statistics.
fn lubm_workload() -> Workload {
    generate(&LubmConfig::new(3))
}

#[test]
fn pinned_lubm_plan_orders() {
    let w = lubm_workload();
    let oracle = &w.oracle;
    // Q1: the planner opens with `?y a ub:University` — three universities
    // is by far the smallest index range — then grows the bound set
    // through departments before touching the 200+-row student patterns.
    let q1 = &w.query("Q1").query;
    assert_eq!(
        plan_bgp_order(oracle, &q1.pattern.triples, &[]),
        vec![1, 2, 4, 0, 3, 5],
        "Q1 plan changed — if intentional, re-pin this order"
    );
    // Q4: the capped type-pattern estimate (64) wins the opening, then
    // `?y ub:doctoralDegreeFrom ?u` (45 rows) beats the big chain
    // patterns; fully-bound leftovers close the plan.
    let q4 = &w.query("Q4").query;
    assert_eq!(
        plan_bgp_order(oracle, &q4.pattern.triples, &[]),
        vec![0, 1, 4, 2, 3, 5],
        "Q4 plan changed — if intentional, re-pin this order"
    );
}

#[test]
fn reordering_strictly_reduces_rows_scanned_on_lubm() {
    let w = lubm_workload();
    let oracle = &w.oracle;
    for name in ["Q1", "Q2", "Q4"] {
        let query = &w.query(name).query;

        oracle.set_reorder(false);
        let before = oracle.rows_scanned();
        let unordered = evaluate(oracle, query).canonicalize();
        let unordered_scans = oracle.rows_scanned() - before;

        oracle.set_reorder(true);
        let before = oracle.rows_scanned();
        let ordered = evaluate(oracle, query).canonicalize();
        let ordered_scans = oracle.rows_scanned() - before;

        assert_eq!(ordered, unordered, "{name}: reordering changed results");
        assert!(
            ordered_scans < unordered_scans,
            "{name}: ordered evaluation scanned {ordered_scans} rows, \
             not below the textual-order baseline {unordered_scans}"
        );
    }
}

#[test]
fn all_unbound_scan_does_not_regress() {
    let w = lubm_workload();
    let oracle = &w.oracle;
    let query = parse_query("SELECT * WHERE { ?s ?p ?o }", oracle.dict()).unwrap();
    assert_eq!(plan_bgp_order(oracle, &query.pattern.triples, &[]), vec![0]);

    oracle.set_reorder(false);
    let before = oracle.rows_scanned();
    let unordered = evaluate(oracle, &query).canonicalize();
    let unordered_scans = oracle.rows_scanned() - before;

    oracle.set_reorder(true);
    let before = oracle.rows_scanned();
    let ordered = evaluate(oracle, &query).canonicalize();
    let ordered_scans = oracle.rows_scanned() - before;

    assert_eq!(ordered, unordered);
    assert_eq!(
        ordered_scans, unordered_scans,
        "a single all-unbound pattern has nothing to reorder — scan \
         counts must match exactly"
    );
}
