//! Pins the documented containment of [`QueryMetrics::check_queries`]:
//! LADE check queries are wire-level SELECTs issued during the analysis
//! phase, so the counter must equal `requests_analysis.select_requests`
//! exactly — under faults too, where a retried check counts once per
//! attempt in *both* quantities and a circuit-broken one in neither.
//! The structured trace is the cross-check: its `Check`-kind wire
//! attempts are the same number, and the baselines (which run no LADE)
//! must record zero check traffic in any mode.

use lusail_benchdata::common::Rng;
use lusail_core::{Lusail, QueryTrace, RequestKind, TraceSink};
use lusail_endpoint::ExecOptions;
use lusail_endpoint::{Federation, LocalEndpoint};
use lusail_rdf::{Dictionary, Term};
use lusail_sparql::parse_query;
use lusail_store::TripleStore;
use lusail_testkit::diff::{clean_policy, faulty_policy};
use lusail_testkit::{Case, EngineKind, FaultSpec, GenConfig};
use std::sync::Arc;

/// A two-endpoint federation where both patterns of a shared-variable
/// join match at both endpoints, so LADE must issue check queries.
fn overlapping_fed() -> Federation {
    let dict = Dictionary::shared();
    let mut a = TripleStore::new(Arc::clone(&dict));
    let mut b = TripleStore::new(Arc::clone(&dict));
    for i in 0..5 {
        a.insert_terms(
            &Term::iri(format!("http://a/s{i}")),
            &Term::iri("http://x/p"),
            &Term::iri(format!("http://v/{i}")),
        );
        a.insert_terms(
            &Term::iri(format!("http://v/{i}")),
            &Term::iri("http://x/q"),
            &Term::iri(format!("http://a/o{i}")),
        );
        b.insert_terms(
            &Term::iri(format!("http://b/s{i}")),
            &Term::iri("http://x/p"),
            &Term::iri(format!("http://v/{}", i + 2)),
        );
        b.insert_terms(
            &Term::iri(format!("http://v/{}", i + 2)),
            &Term::iri("http://x/q"),
            &Term::iri(format!("http://b/o{i}")),
        );
    }
    let mut fed = Federation::new(dict);
    fed.add(Arc::new(LocalEndpoint::new("A", a)));
    fed.add(Arc::new(LocalEndpoint::new("B", b)));
    fed
}

fn fault_plan(case_seed: u64, n_endpoints: usize, faulty: bool) -> FaultSpec {
    if faulty {
        let mut rng = Rng::new(case_seed ^ 0xFA17_0000_0000_0001);
        FaultSpec::random(&mut rng, n_endpoints)
    } else {
        FaultSpec::default()
    }
}

fn is_flat(case: &Case) -> bool {
    case.query.pattern.optionals.is_empty()
        && case.query.pattern.unions.is_empty()
        && case.query.pattern.not_exists.is_empty()
}

#[test]
fn check_queries_equal_analysis_selects_and_trace_attempts() {
    let fed = overlapping_fed();
    let query = parse_query(
        "SELECT * WHERE { ?s <http://x/p> ?v . ?v <http://x/q> ?o }",
        fed.dict(),
    )
    .unwrap();
    let engine = Lusail::default();
    let sink = TraceSink::enabled();
    let result = engine
        .execute_with(
            &fed,
            &query,
            &ExecOptions::default().with_trace(sink.clone()),
        )
        .unwrap();
    assert!(
        result.metrics.check_queries > 0,
        "overlapping sources must force check queries"
    );
    assert_eq!(
        result.metrics.check_queries, result.metrics.requests_analysis.select_requests,
        "check queries are exactly the analysis-phase SELECTs"
    );
    let trace = QueryTrace::from_sink(&sink);
    assert_eq!(
        trace.requests(RequestKind::Check).attempts,
        result.metrics.check_queries,
        "the trace's Check wire attempts are the same count"
    );
}

#[test]
fn check_query_count_stays_inside_analysis_selects_under_faults() {
    // High straddle keeps the GJV machinery busy; clean and faulted runs
    // must both uphold `check_queries == requests_analysis.select_requests`
    // (wire attempts on both sides: retries count per attempt, tripped
    // circuits not at all). On flat queries the trace agrees too; nested
    // groups legitimately add execution-phase checks to the trace only.
    let cfg = GenConfig {
        straddle: 1.0,
        ..GenConfig::default()
    };
    for seed in 0..10u64 {
        let case = Case::generate(seed, &cfg);
        for faulty in [false, true] {
            let faults = fault_plan(seed, case.n_endpoints, faulty);
            let (fed, _locals) = case.federation(&faults);
            let policy = if faulty {
                faulty_policy()
            } else {
                clean_policy()
            };
            let engine = Lusail::default().with_policy(policy);
            let sink = TraceSink::enabled();
            let result = engine
                .execute_with(
                    &fed,
                    &case.query,
                    &ExecOptions::default().with_trace(sink.clone()),
                )
                .unwrap();
            assert_eq!(
                result.metrics.check_queries, result.metrics.requests_analysis.select_requests,
                "seed {seed} faulty {faulty}: check_queries diverged from analysis SELECTs"
            );
            if is_flat(&case) {
                let trace = QueryTrace::from_sink(&sink);
                assert_eq!(
                    trace.requests(RequestKind::Check).attempts,
                    result.metrics.check_queries,
                    "seed {seed} faulty {faulty}: trace Check attempts diverged"
                );
            }
        }
    }
}

#[test]
fn baselines_issue_no_check_queries_clean_or_faulted() {
    let cfg = GenConfig::default();
    for seed in 0..6u64 {
        let case = Case::generate(seed, &cfg);
        for faulty in [false, true] {
            let faults = fault_plan(seed, case.n_endpoints, faulty);
            let (fed, locals) = case.federation(&faults);
            let policy = if faulty {
                faulty_policy()
            } else {
                clean_policy()
            };
            for kind in [EngineKind::FedX, EngineKind::Hibiscus, EngineKind::Splendid] {
                let runner = kind.build(&locals, policy);
                let sink = TraceSink::enabled();
                let _ = runner.run_with(
                    &fed,
                    &case.query,
                    &ExecOptions::default().with_trace(sink.clone()),
                );
                let trace = QueryTrace::from_sink(&sink);
                let checks = trace.requests(RequestKind::Check);
                assert_eq!(
                    (checks.requests, checks.attempts),
                    (0, 0),
                    "seed {seed} faulty {faulty} {}: baselines run no LADE",
                    kind.name()
                );
            }
        }
    }
}
