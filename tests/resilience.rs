//! Fault-tolerance integration tests: engines against flaky and dead
//! endpoints (the failure modes the decentralized setting implies — no
//! engine controls the remote sources, it can only retry and route
//! around them).
//!
//! * A seeded 20% transient failure rate on one endpoint must be fully
//!   absorbed by the retry layer: all four engines still return exactly
//!   the oracle result and report the query as complete.
//! * A permanently dead endpoint must degrade gracefully: partial
//!   results, `complete: false`, and a failure report naming the dead
//!   endpoint.

use lusail_baselines::{FedX, HiBisCus, HibiscusIndex, Splendid, VoidIndex};
use lusail_benchdata::lubm;
use lusail_core::Lusail;
use lusail_endpoint::ExecOptions;
use lusail_endpoint::{
    EndpointError, FaultProfile, FederatedEngine, Federation, FlakyEndpoint, HealthState,
    LocalEndpoint, ManualClock, RequestPolicy, ResilientClient, SparqlEndpoint, StatsSnapshot,
    TraceEvent, TraceSink,
};
use lusail_rdf::{Dictionary, Term};
use lusail_sparql::parse_query;
use lusail_store::TripleStore;
use std::sync::Arc;
use std::time::Duration;

/// Rebuilds the workload's federation with `target` wrapped in a
/// [`FlakyEndpoint`] carrying the given fault profile.
fn flaky_federation(
    w: &lusail_benchdata::Workload,
    target: &str,
    profile: FaultProfile,
) -> Federation {
    let mut builder = Federation::builder(Arc::clone(&w.dict));
    for (_, ep) in w.federation.iter() {
        builder = builder.custom(ep.clone());
        if ep.name() == target {
            builder = builder.faults(profile);
        }
    }
    builder.build()
}

/// A retry policy generous enough that a 20% transient failure rate is
/// (for all practical purposes) always absorbed, with backoffs too small
/// to slow the test down.
fn patient_policy() -> RequestPolicy {
    RequestPolicy {
        max_retries: 8,
        base_backoff: Duration::from_micros(10),
        max_backoff: Duration::from_millis(1),
        deadline: Duration::ZERO,
        trip_threshold: 0,
        ..RequestPolicy::default()
    }
}

fn engines(
    w: &lusail_benchdata::Workload,
    policy: RequestPolicy,
) -> Vec<(&'static str, Box<dyn FederatedEngine>)> {
    vec![
        ("Lusail", Box::new(Lusail::default().with_policy(policy))),
        ("FedX", Box::new(FedX::default().with_policy(policy))),
        (
            "HiBISCuS",
            Box::new(HiBisCus::new(HibiscusIndex::build(&w.endpoint_refs())).with_policy(policy)),
        ),
        (
            "SPLENDID",
            Box::new(Splendid::new(VoidIndex::build(&w.endpoint_refs())).with_policy(policy)),
        ),
    ]
}

#[test]
fn transient_faults_are_absorbed_by_retries() {
    let w = lubm::generate(&lubm::LubmConfig::new(4));
    let fed = flaky_federation(&w, "univ-1", FaultProfile::transient(42, 0.2));
    let q = &w.query("Q2").query;
    let expected = lusail_store::eval::evaluate(&w.oracle, q).canonicalize();
    assert!(!expected.is_empty(), "Q2 oracle result is empty");

    for (name, engine) in engines(&w, patient_policy()) {
        let outcome = engine.run_with(&fed, q, &ExecOptions::default()).unwrap();
        assert!(
            outcome.complete,
            "{name}: query incomplete under transient faults: {:?}",
            outcome.failures
        );
        assert_eq!(
            outcome.solutions.canonicalize(),
            expected,
            "{name}: wrong answer under transient faults"
        );
    }
    // The fault stream really fired: the flaky endpoint counted injections.
    let (_, flaky) = fed.endpoint_by_name("univ-1").unwrap();
    assert!(
        flaky.stats_snapshot().faults_injected > 0,
        "no transient fault was ever injected"
    );
}

#[test]
fn dead_endpoint_degrades_to_partial_results() {
    let w = lubm::generate(&lubm::LubmConfig::new(4));
    let fed = flaky_federation(&w, "univ-1", FaultProfile::dead());
    let q = &w.query("Q2").query;
    let expected = lusail_store::eval::evaluate(&w.oracle, q).canonicalize();

    for (name, engine) in engines(&w, RequestPolicy::default()) {
        let outcome = engine.run_with(&fed, q, &ExecOptions::default()).unwrap();
        assert!(
            !outcome.complete,
            "{name}: query reported complete despite a dead endpoint"
        );
        assert!(
            outcome.failures.iter().any(|f| f.name == "univ-1"),
            "{name}: failure report does not name the dead endpoint: {:?}",
            outcome.failures
        );
        let partial = outcome.solutions.canonicalize();
        assert!(
            !partial.is_empty(),
            "{name}: live endpoints contributed no rows"
        );
        assert!(
            partial.len() < expected.len(),
            "{name}: no rows went missing although an endpoint is dead"
        );
        for row in &partial.rows {
            assert!(
                expected.rows.contains(row),
                "{name}: spurious row not in the oracle result"
            );
        }
    }
}

#[test]
fn dead_endpoint_degradation_is_recorded_in_metrics() {
    let w = lubm::generate(&lubm::LubmConfig::new(4));
    let fed = flaky_federation(&w, "univ-1", FaultProfile::dead());
    let q = &w.query("Q2").query;
    let engine = Lusail::default();
    let result = engine.execute(&fed, q).unwrap();
    assert!(!result.complete);
    // Failed ASK probes degraded to "assume relevant" and were counted.
    assert!(
        result.metrics.degraded_ask_probes > 0,
        "no degraded ASK probe recorded: {:?}",
        result.metrics
    );
}

// ---------- the retry machinery end-to-end over a scripted endpoint --------

fn tiny_endpoint() -> (Arc<Dictionary>, TripleStore) {
    let dict = Dictionary::shared();
    let mut st = TripleStore::new(Arc::clone(&dict));
    for i in 0..5 {
        st.insert_terms(
            &Term::iri(format!("http://x/s{i}")),
            &Term::iri("http://x/p"),
            &Term::int(i),
        );
    }
    (dict, st)
}

#[test]
fn scripted_faults_are_retried_and_reported() {
    let (dict, st) = tiny_endpoint();
    let flaky = FlakyEndpoint::scripted(
        Arc::new(LocalEndpoint::new("S", st)),
        [
            Some(EndpointError::Interrupted),
            Some(EndpointError::TooManyRequests),
            None, // third attempt succeeds
        ],
    );
    let mut fed = Federation::new(Arc::clone(&dict));
    let ep = fed.add(Arc::new(flaky));
    let q = parse_query("SELECT * WHERE { ?s <http://x/p> ?o }", &dict).unwrap();

    let clock = ManualClock::new();
    let client = ResilientClient::with_clock(patient_policy(), clock.clone());
    let rows = client.select(&fed, ep, &q).unwrap();
    assert_eq!(rows.len(), 5);
    assert_eq!(client.retries(ep), 2);
    assert_eq!(client.failed_requests(ep), 0);
    assert!(clock.elapsed() > Duration::ZERO, "backoffs were not slept");

    let report = client.report(&fed);
    assert_eq!(report.len(), 1);
    assert_eq!(report[0].name, "S");
    assert_eq!(report[0].retries, 2);
    assert!(!report[0].dead);
}

#[test]
fn engine_retries_on_injected_clock_without_wall_sleep() {
    let (dict, st) = tiny_endpoint();
    let flaky = FlakyEndpoint::scripted(
        Arc::new(LocalEndpoint::new("S", st)),
        // Fail the first few requests, whatever order the engine issues
        // them in; everything afterwards passes.
        [Some(EndpointError::Interrupted); 3],
    );
    let mut fed = Federation::new(Arc::clone(&dict));
    fed.add(Arc::new(flaky));
    let q = parse_query("SELECT * WHERE { ?s <http://x/p> ?o }", &dict).unwrap();

    // Deliberately huge backoffs: only tolerable because the injected
    // clock sleeps virtually.
    let policy = RequestPolicy {
        max_retries: 5,
        base_backoff: Duration::from_secs(60),
        max_backoff: Duration::from_secs(60),
        deadline: Duration::ZERO,
        trip_threshold: 0,
        ..RequestPolicy::default()
    };
    let clock = ManualClock::new();
    let engine = Lusail::default()
        .with_policy(policy)
        .with_clock(clock.clone());
    let started = std::time::Instant::now();
    let result = engine.execute(&fed, &q).unwrap();
    assert!(
        result.complete,
        "retries did not absorb the scripted faults"
    );
    assert_eq!(result.solutions.len(), 5);
    assert!(
        clock.elapsed() >= Duration::from_secs(60),
        "backoff never reached the virtual clock: {:?}",
        clock.elapsed()
    );
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "engine slept on the wall clock despite the injected clock"
    );
}

// ---------- circuit recovery, hedging, and the per-query budget ------------

#[test]
fn tripped_endpoint_recovers_after_manual_clock_advance() {
    let (dict, st) = tiny_endpoint();
    let flaky = FlakyEndpoint::scripted(
        Arc::new(LocalEndpoint::new("S", st)),
        // Three failures trip the circuit; everything afterwards passes.
        [Some(EndpointError::Interrupted); 3],
    );
    let mut fed = Federation::new(Arc::clone(&dict));
    let ep = fed.add(Arc::new(flaky));
    let q = parse_query("SELECT * WHERE { ?s <http://x/p> ?o }", &dict).unwrap();

    let policy = RequestPolicy {
        max_retries: 0,
        trip_threshold: 3,
        open_cooldown: Duration::from_secs(5),
        ..RequestPolicy::default()
    };
    let clock = ManualClock::new();
    let client = ResilientClient::with_clock(policy, clock.clone());
    for _ in 0..3 {
        assert!(client.select(&fed, ep, &q).is_err());
    }
    assert!(client.is_dead(ep));
    assert_eq!(client.health(ep), HealthState::Open);

    // While the cooldown runs, requests short-circuit without touching
    // the wire.
    let before = fed.endpoint(ep).stats_snapshot();
    assert!(matches!(
        client.select(&fed, ep, &q),
        Err(EndpointError::Unavailable)
    ));
    assert_eq!(
        fed.endpoint(ep)
            .stats_snapshot()
            .since(&before)
            .select_requests,
        0
    );

    // The regression this pins: `is_dead` used to be a one-way trip, so a
    // recovered endpoint stayed banned forever. After the cooldown the
    // circuit half-opens, the probe succeeds, and the endpoint is
    // re-admitted for good.
    clock.advance(Duration::from_secs(6));
    assert!(!client.is_dead(ep));
    let rows = client.select(&fed, ep, &q).unwrap();
    assert_eq!(rows.len(), 5);
    assert_eq!(client.health(ep), HealthState::Closed);
    assert!(client.select(&fed, ep, &q).is_ok());
}

/// An endpoint that advances a [`ManualClock`] on every `SELECT` (so the
/// resilience layer observes a latency) and optionally fails it.
struct SlowEndpoint {
    inner: LocalEndpoint,
    clock: Arc<ManualClock>,
    delay: Duration,
    fail: Option<EndpointError>,
}

impl SparqlEndpoint for SlowEndpoint {
    fn name(&self) -> &str {
        self.inner.name()
    }
    fn ask(&self, q: &lusail_sparql::Query) -> Result<bool, EndpointError> {
        self.inner.ask(q)
    }
    fn select(
        &self,
        q: &lusail_sparql::Query,
    ) -> Result<lusail_sparql::SolutionSet, EndpointError> {
        self.clock.advance(self.delay);
        // Let the inner endpoint count the attempt either way: a failed
        // request still crossed the wire.
        let rows = self.inner.select(q)?;
        match self.fail {
            Some(e) => Err(e),
            None => Ok(rows),
        }
    }
    fn count(&self, q: &lusail_sparql::Query) -> Result<u64, EndpointError> {
        self.inner.count(q)
    }
    fn stats_snapshot(&self) -> StatsSnapshot {
        self.inner.stats_snapshot()
    }
    fn triple_count(&self) -> usize {
        self.inner.triple_count()
    }
}

#[test]
fn slow_primary_is_hedged_with_its_replica() {
    let (dict, st) = tiny_endpoint();
    let (_, replica_st) = {
        let mut st2 = TripleStore::new(Arc::clone(&dict));
        for i in 0..5 {
            st2.insert_terms(
                &Term::iri(format!("http://x/s{i}")),
                &Term::iri("http://x/p"),
                &Term::int(i),
            );
        }
        (Arc::clone(&dict), st2)
    };
    let clock = ManualClock::new();
    let mut fed = Federation::new(Arc::clone(&dict));
    let primary = fed.add(Arc::new(SlowEndpoint {
        inner: LocalEndpoint::new("P", st),
        clock: clock.clone(),
        delay: Duration::from_millis(50),
        fail: None,
    }));
    let replica = fed.add_replica(primary, Arc::new(LocalEndpoint::new("R", replica_st)));
    let q = parse_query("SELECT * WHERE { ?s <http://x/p> ?o }", &dict).unwrap();

    let policy = RequestPolicy {
        hedge_threshold: Duration::from_millis(10),
        ..RequestPolicy::default()
    };
    let sink = TraceSink::enabled();
    let client = ResilientClient::traced(policy, clock.clone(), sink.clone());

    // First request: no latency observed yet, the primary serves it and
    // its 50 ms response time is recorded.
    let (winner, rows) = client.select_failover(&fed, primary, &q).unwrap();
    assert_eq!((winner, rows.len()), (primary, 5));
    assert_eq!(
        client.last_latency(primary),
        Some(Duration::from_millis(50))
    );

    // Second request: the primary is now known slow, so the replica is
    // hedged in front of it and — succeeding — elides the primary's
    // attempt entirely.
    let (winner, rows) = client.select_failover(&fed, primary, &q).unwrap();
    assert_eq!((winner, rows.len()), (replica, 5));
    assert_eq!(fed.endpoint(primary).stats_snapshot().select_requests, 1);
    assert_eq!(fed.endpoint(replica).stats_snapshot().select_requests, 1);
    assert!(
        sink.events().iter().any(
            |ev| matches!(ev, TraceEvent::Hedged { primary: p, replica: r }
                if *p == primary && *r == replica)
        ),
        "no Hedged event was emitted"
    );
}

// ---------- statistics staleness across failover ----------------------------

/// Offline statistics summarize the *primary's* store. Once a dead
/// primary's group is served by a replica that has diverged from it, a
/// conclusive local answer derived from those statistics may be wrong —
/// so `finish()` must drop the endpoint's stats exactly like it drops
/// the memoized probe answers (the PR-4 staleness rule). Regression
/// scenario: the primary has no `<q>` triples (its statistics
/// conclusively deny the predicate), the replica *does*; after the first
/// query fails over, a second query over `<q>` must reach the wire and
/// return the replica's rows instead of being elided to empty by stale
/// statistics.
#[test]
fn failover_to_diverged_replica_invalidates_stale_statistics() {
    use lusail_sparql::ast::{PatternTerm, TriplePattern};
    use lusail_store::EndpointStats;

    let dict = Dictionary::shared();
    let mut primary_st = TripleStore::new(Arc::clone(&dict));
    let mut replica_st = TripleStore::new(Arc::clone(&dict));
    for i in 0..4 {
        let s = Term::iri(format!("http://x/s{i}"));
        primary_st.insert_terms(&s, &Term::iri("http://x/p"), &Term::int(i));
        replica_st.insert_terms(&s, &Term::iri("http://x/p"), &Term::int(i));
    }
    // The divergence: three <q> triples only the replica carries.
    for i in 0..3 {
        replica_st.insert_terms(
            &Term::iri(format!("http://x/s{i}")),
            &Term::iri("http://x/q"),
            &Term::int(100 + i),
        );
    }

    // Statistics built from the primary conclusively deny <q> — the
    // answer a stale consultation would serve after the failover.
    let stats = Arc::new(EndpointStats::build(&primary_st));
    let q_probe = TriplePattern::new(
        PatternTerm::Var("s".into()),
        PatternTerm::Const(dict.encode(&Term::iri("http://x/q"))),
        PatternTerm::Var("o".into()),
    );
    assert_eq!(stats.ask_pattern(&q_probe), Some(false));

    let mut fed = Federation::new(Arc::clone(&dict));
    let primary = fed.add(Arc::new(FlakyEndpoint::new(
        Arc::new(LocalEndpoint::new("P", primary_st)),
        FaultProfile::dead(),
    )));
    fed.add_replica(primary, Arc::new(LocalEndpoint::new("R", replica_st)));
    fed.attach_stats(primary, stats);

    // The elided ASK leaves the SELECT as the *only* wire attempt on the
    // primary, so the circuit must trip on that first failure for the
    // report to mark the endpoint dead.
    let engine = Lusail::default().with_policy(RequestPolicy {
        trip_threshold: 1,
        ..RequestPolicy::default()
    });

    // Query 1 (over <p>): the ASK is elided by the (still valid)
    // statistics, the SELECT discovers the dead primary and fails over to
    // the replica, and the failure report marks the primary dead — which
    // must take its statistics down with its probe caches.
    let q1 = parse_query("SELECT * WHERE { ?s <http://x/p> ?o }", &dict).unwrap();
    let r1 = engine.execute(&fed, &q1).unwrap();
    assert!(r1.complete, "replica failed to absorb the dead primary");
    assert_eq!(r1.solutions.len(), 4);
    assert!(
        r1.failures.iter().any(|f| f.endpoint == primary && f.dead),
        "failure report does not mark the primary dead: {:?}",
        r1.failures
    );
    assert!(
        fed.stats_for(primary).is_none(),
        "stale statistics survived the failover"
    );

    // Query 2 (over <q>): with the stats gone the ASK goes to the wire,
    // fails over, and the replica answers true — so the diverged rows
    // come back. Stale statistics would have concluded "no source" and
    // returned an empty (yet nominally complete) result.
    let q2 = parse_query("SELECT * WHERE { ?s <http://x/q> ?o }", &dict).unwrap();
    let r2 = engine.execute(&fed, &q2).unwrap();
    assert!(r2.complete, "replica failed to absorb the dead primary");
    assert_eq!(
        r2.solutions.len(),
        3,
        "diverged replica rows went missing after failover"
    );
}

/// The multi-tenant sharpening of the staleness rule above: in a
/// long-lived server the engine and federation are shared, so waiting for
/// tenant A's `finish()` to drop a dead endpoint's statistics leaves a
/// window in which tenant B plans from them. The serving layer closes the
/// window with a circuit-transition hook ([`ExecOptions::with_health_hook`]
/// → `lusail_server::make_invalidation_hook`) that invalidates the shared
/// probe caches and statistics **at transition time**, mid-query.
///
/// Proven from inside the window itself: tenant B's whole query runs
/// *within the transition hook* — strictly before A's query (let alone
/// its `finish()`) completes — and must already see the statistics gone,
/// reaching the diverged replica's three `<q>` rows instead of a stale
/// conclusive "no such predicate". Virtual time (`ManualClock`) keeps
/// the retry backoffs of both tenants instant and deterministic.
#[test]
fn transition_hook_invalidates_shared_state_before_concurrent_tenant_plans() {
    use lusail_sparql::ast::{PatternTerm, TriplePattern};
    use lusail_store::EndpointStats;
    use std::sync::atomic::{AtomicU64, Ordering};
    use std::sync::Mutex;

    let dict = Dictionary::shared();
    let mut primary_st = TripleStore::new(Arc::clone(&dict));
    let mut replica_st = TripleStore::new(Arc::clone(&dict));
    for i in 0..4 {
        let s = Term::iri(format!("http://x/s{i}"));
        primary_st.insert_terms(&s, &Term::iri("http://x/p"), &Term::int(i));
        replica_st.insert_terms(&s, &Term::iri("http://x/p"), &Term::int(i));
    }
    for i in 0..3 {
        replica_st.insert_terms(
            &Term::iri(format!("http://x/s{i}")),
            &Term::iri("http://x/q"),
            &Term::int(100 + i),
        );
    }
    let stats = Arc::new(EndpointStats::build(&primary_st));
    let q_probe = TriplePattern::new(
        PatternTerm::Var("s".into()),
        PatternTerm::Const(dict.encode(&Term::iri("http://x/q"))),
        PatternTerm::Var("o".into()),
    );
    assert_eq!(stats.ask_pattern(&q_probe), Some(false));

    let mut fed = Federation::new(Arc::clone(&dict));
    let primary = fed.add(Arc::new(FlakyEndpoint::new(
        Arc::new(LocalEndpoint::new("P", primary_st)),
        FaultProfile::dead(),
    )));
    fed.add_replica(primary, Arc::new(LocalEndpoint::new("R", replica_st)));
    fed.attach_stats(primary, stats);

    let engine = Arc::new(
        Lusail::default()
            .with_policy(RequestPolicy {
                trip_threshold: 1,
                ..RequestPolicy::default()
            })
            .with_clock(ManualClock::new()),
    );

    // The server's standard invalidation hook, wrapped so that the first
    // primary-circuit-open transition immediately runs tenant B's query —
    // the tightest possible interleaving against tenant A.
    let invalidations = Arc::new(AtomicU64::new(0));
    let inner = lusail_server::make_invalidation_hook(
        Arc::clone(&engine),
        fed.clone(),
        Arc::default(),
        Arc::clone(&invalidations),
    );
    let tenant_b: Arc<Mutex<Option<lusail_core::QueryResult>>> = Arc::default();
    let hook: lusail_endpoint::HealthHook = Arc::new({
        let fed = fed.clone();
        let engine = Arc::clone(&engine);
        let dict = Arc::clone(&dict);
        let tenant_b = Arc::clone(&tenant_b);
        move |ep, _from, to| {
            inner(ep, _from, to);
            if ep != primary || to != HealthState::Open {
                return;
            }
            let mut slot = tenant_b.lock().unwrap();
            if slot.is_some() {
                return;
            }
            assert!(
                fed.stats_for(primary).is_none(),
                "statistics still attached at transition time — tenant B \
                 would plan from them"
            );
            let q2 = parse_query("SELECT * WHERE { ?s <http://x/q> ?o }", &dict).unwrap();
            *slot = Some(engine.execute(&fed, &q2).unwrap());
        }
    });

    // Tenant A's query (over <p>): its SELECT hits the dead primary,
    // trips the circuit, and fires the hook mid-flight.
    let q1 = parse_query("SELECT * WHERE { ?s <http://x/p> ?o }", &dict).unwrap();
    let opts = ExecOptions::default().with_health_hook(hook);
    let r1 = engine.execute_with(&fed, &q1, &opts).unwrap();
    assert!(r1.complete, "replica failed to absorb the dead primary");
    assert_eq!(r1.solutions.len(), 4);

    // Tenant B ran inside the window and saw fresh state.
    let r2 = tenant_b
        .lock()
        .unwrap()
        .take()
        .expect("the primary's circuit never opened during tenant A's query");
    assert!(r2.complete, "tenant B failed to absorb the dead primary");
    assert_eq!(
        r2.solutions.len(),
        3,
        "tenant B was elided to a stale empty answer"
    );
    assert!(invalidations.load(Ordering::Relaxed) > 0);
}

#[test]
fn exhausted_query_budget_blocks_failover_wire_attempts() {
    let (dict, st) = tiny_endpoint();
    let mut replica_st = TripleStore::new(Arc::clone(&dict));
    replica_st.insert_terms(
        &Term::iri("http://x/s0"),
        &Term::iri("http://x/p"),
        &Term::int(0),
    );
    let clock = ManualClock::new();
    let mut fed = Federation::new(Arc::clone(&dict));
    // The primary burns 120 ms of virtual time and then times out — more
    // than the whole 100 ms query budget in a single attempt.
    let primary = fed.add(Arc::new(SlowEndpoint {
        inner: LocalEndpoint::new("P", st),
        clock: clock.clone(),
        delay: Duration::from_millis(120),
        fail: Some(EndpointError::Timeout),
    }));
    let replica = fed.add_replica(primary, Arc::new(LocalEndpoint::new("R", replica_st)));
    let q = parse_query("SELECT * WHERE { ?s <http://x/p> ?o }", &dict).unwrap();

    let policy = RequestPolicy {
        max_retries: 3,
        base_backoff: Duration::from_millis(1),
        query_budget: Duration::from_millis(100),
        trip_threshold: 0,
        ..RequestPolicy::default()
    };
    let client = ResilientClient::with_clock(policy, clock.clone());

    // The deadline pin: once the budget is spent, *no* wire attempt may
    // start — not a retry on the primary, not the failover hop to the
    // healthy replica.
    let err = client.select_failover(&fed, primary, &q).unwrap_err();
    assert_eq!(err, EndpointError::Timeout);
    assert!(client.budget_exhausted());
    assert_eq!(fed.endpoint(primary).stats_snapshot().select_requests, 1);
    assert_eq!(
        fed.endpoint(replica).stats_snapshot().select_requests,
        0,
        "failover crossed the wire after the query deadline"
    );
}
