//! Fault-tolerance integration tests: engines against flaky and dead
//! endpoints (the failure modes the decentralized setting implies — no
//! engine controls the remote sources, it can only retry and route
//! around them).
//!
//! * A seeded 20% transient failure rate on one endpoint must be fully
//!   absorbed by the retry layer: all four engines still return exactly
//!   the oracle result and report the query as complete.
//! * A permanently dead endpoint must degrade gracefully: partial
//!   results, `complete: false`, and a failure report naming the dead
//!   endpoint.

use lusail_baselines::{FedX, HiBisCus, HibiscusIndex, Splendid, VoidIndex};
use lusail_benchdata::lubm;
use lusail_core::Lusail;
use lusail_endpoint::{
    EndpointError, FaultProfile, FederatedEngine, Federation, FlakyEndpoint, LocalEndpoint,
    ManualClock, RequestPolicy, ResilientClient,
};
use lusail_rdf::{Dictionary, Term};
use lusail_sparql::parse_query;
use lusail_store::TripleStore;
use std::sync::Arc;
use std::time::Duration;

/// Rebuilds the workload's federation with `target` wrapped in a
/// [`FlakyEndpoint`] carrying the given fault profile.
fn flaky_federation(
    w: &lusail_benchdata::Workload,
    target: &str,
    profile: FaultProfile,
) -> Federation {
    let mut builder = Federation::builder(Arc::clone(&w.dict));
    for (_, ep) in w.federation.iter() {
        builder = builder.custom(ep.clone());
        if ep.name() == target {
            builder = builder.faults(profile);
        }
    }
    builder.build()
}

/// A retry policy generous enough that a 20% transient failure rate is
/// (for all practical purposes) always absorbed, with backoffs too small
/// to slow the test down.
fn patient_policy() -> RequestPolicy {
    RequestPolicy {
        max_retries: 8,
        base_backoff: Duration::from_micros(10),
        max_backoff: Duration::from_millis(1),
        deadline: Duration::ZERO,
        trip_threshold: 0,
        ..RequestPolicy::default()
    }
}

fn engines(
    w: &lusail_benchdata::Workload,
    policy: RequestPolicy,
) -> Vec<(&'static str, Box<dyn FederatedEngine>)> {
    vec![
        ("Lusail", Box::new(Lusail::default().with_policy(policy))),
        ("FedX", Box::new(FedX::default().with_policy(policy))),
        (
            "HiBISCuS",
            Box::new(HiBisCus::new(HibiscusIndex::build(&w.endpoint_refs())).with_policy(policy)),
        ),
        (
            "SPLENDID",
            Box::new(Splendid::new(VoidIndex::build(&w.endpoint_refs())).with_policy(policy)),
        ),
    ]
}

#[test]
fn transient_faults_are_absorbed_by_retries() {
    let w = lubm::generate(&lubm::LubmConfig::new(4));
    let fed = flaky_federation(&w, "univ-1", FaultProfile::transient(42, 0.2));
    let q = &w.query("Q2").query;
    let expected = lusail_store::eval::evaluate(&w.oracle, q).canonicalize();
    assert!(!expected.is_empty(), "Q2 oracle result is empty");

    for (name, engine) in engines(&w, patient_policy()) {
        let outcome = engine.run(&fed, q).unwrap();
        assert!(
            outcome.complete,
            "{name}: query incomplete under transient faults: {:?}",
            outcome.failures
        );
        assert_eq!(
            outcome.solutions.canonicalize(),
            expected,
            "{name}: wrong answer under transient faults"
        );
    }
    // The fault stream really fired: the flaky endpoint counted injections.
    let (_, flaky) = fed.endpoint_by_name("univ-1").unwrap();
    assert!(
        flaky.stats_snapshot().faults_injected > 0,
        "no transient fault was ever injected"
    );
}

#[test]
fn dead_endpoint_degrades_to_partial_results() {
    let w = lubm::generate(&lubm::LubmConfig::new(4));
    let fed = flaky_federation(&w, "univ-1", FaultProfile::dead());
    let q = &w.query("Q2").query;
    let expected = lusail_store::eval::evaluate(&w.oracle, q).canonicalize();

    for (name, engine) in engines(&w, RequestPolicy::default()) {
        let outcome = engine.run(&fed, q).unwrap();
        assert!(
            !outcome.complete,
            "{name}: query reported complete despite a dead endpoint"
        );
        assert!(
            outcome.failures.iter().any(|f| f.name == "univ-1"),
            "{name}: failure report does not name the dead endpoint: {:?}",
            outcome.failures
        );
        let partial = outcome.solutions.canonicalize();
        assert!(
            !partial.is_empty(),
            "{name}: live endpoints contributed no rows"
        );
        assert!(
            partial.len() < expected.len(),
            "{name}: no rows went missing although an endpoint is dead"
        );
        for row in &partial.rows {
            assert!(
                expected.rows.contains(row),
                "{name}: spurious row not in the oracle result"
            );
        }
    }
}

#[test]
fn dead_endpoint_degradation_is_recorded_in_metrics() {
    let w = lubm::generate(&lubm::LubmConfig::new(4));
    let fed = flaky_federation(&w, "univ-1", FaultProfile::dead());
    let q = &w.query("Q2").query;
    let engine = Lusail::default();
    let result = engine.execute(&fed, q).unwrap();
    assert!(!result.complete);
    // Failed ASK probes degraded to "assume relevant" and were counted.
    assert!(
        result.metrics.degraded_ask_probes > 0,
        "no degraded ASK probe recorded: {:?}",
        result.metrics
    );
}

// ---------- the retry machinery end-to-end over a scripted endpoint --------

fn tiny_endpoint() -> (Arc<Dictionary>, TripleStore) {
    let dict = Dictionary::shared();
    let mut st = TripleStore::new(Arc::clone(&dict));
    for i in 0..5 {
        st.insert_terms(
            &Term::iri(format!("http://x/s{i}")),
            &Term::iri("http://x/p"),
            &Term::int(i),
        );
    }
    (dict, st)
}

#[test]
fn scripted_faults_are_retried_and_reported() {
    let (dict, st) = tiny_endpoint();
    let flaky = FlakyEndpoint::scripted(
        Arc::new(LocalEndpoint::new("S", st)),
        [
            Some(EndpointError::Interrupted),
            Some(EndpointError::TooManyRequests),
            None, // third attempt succeeds
        ],
    );
    let mut fed = Federation::new(Arc::clone(&dict));
    let ep = fed.add(Arc::new(flaky));
    let q = parse_query("SELECT * WHERE { ?s <http://x/p> ?o }", &dict).unwrap();

    let clock = ManualClock::new();
    let client = ResilientClient::with_clock(patient_policy(), clock.clone());
    let rows = client.select(&fed, ep, &q).unwrap();
    assert_eq!(rows.len(), 5);
    assert_eq!(client.retries(ep), 2);
    assert_eq!(client.failed_requests(ep), 0);
    assert!(clock.elapsed() > Duration::ZERO, "backoffs were not slept");

    let report = client.report(&fed);
    assert_eq!(report.len(), 1);
    assert_eq!(report[0].name, "S");
    assert_eq!(report[0].retries, 2);
    assert!(!report[0].dead);
}

#[test]
fn engine_retries_on_injected_clock_without_wall_sleep() {
    let (dict, st) = tiny_endpoint();
    let flaky = FlakyEndpoint::scripted(
        Arc::new(LocalEndpoint::new("S", st)),
        // Fail the first few requests, whatever order the engine issues
        // them in; everything afterwards passes.
        [Some(EndpointError::Interrupted); 3],
    );
    let mut fed = Federation::new(Arc::clone(&dict));
    fed.add(Arc::new(flaky));
    let q = parse_query("SELECT * WHERE { ?s <http://x/p> ?o }", &dict).unwrap();

    // Deliberately huge backoffs: only tolerable because the injected
    // clock sleeps virtually.
    let policy = RequestPolicy {
        max_retries: 5,
        base_backoff: Duration::from_secs(60),
        max_backoff: Duration::from_secs(60),
        deadline: Duration::ZERO,
        trip_threshold: 0,
        ..RequestPolicy::default()
    };
    let clock = ManualClock::new();
    let engine = Lusail::default()
        .with_policy(policy)
        .with_clock(clock.clone());
    let started = std::time::Instant::now();
    let result = engine.execute(&fed, &q).unwrap();
    assert!(
        result.complete,
        "retries did not absorb the scripted faults"
    );
    assert_eq!(result.solutions.len(), 5);
    assert!(
        clock.elapsed() >= Duration::from_secs(60),
        "backoff never reached the virtual clock: {:?}",
        clock.elapsed()
    );
    assert!(
        started.elapsed() < Duration::from_secs(30),
        "engine slept on the wall clock despite the injected clock"
    );
}
