//! GROUP BY / aggregate tests: local evaluation semantics and the
//! federated path (aggregation must happen over the *global* solution
//! sequence, never per endpoint).

use lusail_baselines::FedX;
use lusail_benchdata::lubm;
use lusail_core::Lusail;
use lusail_endpoint::ExecOptions;
use lusail_endpoint::{FederatedEngine, Federation, LocalEndpoint};
use lusail_rdf::{Dictionary, Term};
use lusail_sparql::parse_query;
use lusail_store::TripleStore;
use std::sync::Arc;

fn sales_store(dict: &Arc<Dictionary>) -> TripleStore {
    let mut st = TripleStore::new(Arc::clone(dict));
    // (item, region, amount)
    for (i, (region, amount)) in [
        ("east", 10),
        ("east", 20),
        ("west", 5),
        ("west", 7),
        ("west", 9),
        ("north", 100),
    ]
    .iter()
    .enumerate()
    {
        let sale = Term::iri(format!("http://s/sale{i}"));
        st.insert_terms(&sale, &Term::iri("http://s/region"), &Term::lit(*region));
        st.insert_terms(&sale, &Term::iri("http://s/amount"), &Term::int(*amount));
    }
    st
}

fn lookup(sols: &lusail_sparql::SolutionSet, dict: &Dictionary, key: &str, col: &str) -> String {
    let kcol = sols.col("r").unwrap();
    let vcol = sols.col(col).unwrap();
    for row in &sols.rows {
        if dict.decode(row[kcol].unwrap()).lexical() == key {
            return dict.decode(row[vcol].unwrap()).lexical().to_string();
        }
    }
    panic!("no group {key}");
}

#[test]
fn local_group_by_with_all_aggregates() {
    let dict = Dictionary::shared();
    let st = sales_store(&dict);
    let q = parse_query(
        "SELECT ?r (COUNT(*) AS ?n) (SUM(?a) AS ?total) (MIN(?a) AS ?lo) \
                (MAX(?a) AS ?hi) (AVG(?a) AS ?mean) \
         WHERE { ?s <http://s/region> ?r . ?s <http://s/amount> ?a } GROUP BY ?r",
        &dict,
    )
    .unwrap();
    let sols = lusail_store::eval::evaluate(&st, &q);
    assert_eq!(sols.len(), 3);
    assert_eq!(lookup(&sols, &dict, "east", "n"), "2");
    assert_eq!(lookup(&sols, &dict, "east", "total"), "30");
    assert_eq!(lookup(&sols, &dict, "east", "mean"), "15");
    assert_eq!(lookup(&sols, &dict, "west", "n"), "3");
    assert_eq!(lookup(&sols, &dict, "west", "total"), "21");
    assert_eq!(lookup(&sols, &dict, "west", "lo"), "5");
    assert_eq!(lookup(&sols, &dict, "west", "hi"), "9");
    assert_eq!(lookup(&sols, &dict, "west", "mean"), "7");
    assert_eq!(lookup(&sols, &dict, "north", "n"), "1");
}

#[test]
fn implicit_group_counts_everything_even_when_empty() {
    let dict = Dictionary::shared();
    let st = sales_store(&dict);
    let q = parse_query(
        "SELECT (COUNT(?s) AS ?n) (SUM(?a) AS ?t) WHERE { \
         ?s <http://s/amount> ?a }",
        &dict,
    )
    .unwrap();
    let sols = lusail_store::eval::evaluate(&st, &q);
    assert_eq!(sols.len(), 1);
    assert_eq!(dict.decode(sols.get(0, "n").unwrap()).lexical(), "6");
    assert_eq!(dict.decode(sols.get(0, "t").unwrap()).lexical(), "151");

    // Empty input: one row, COUNT = 0.
    let q = parse_query(
        "SELECT (COUNT(?s) AS ?n) WHERE { ?s <http://s/nothing> ?a }",
        &dict,
    )
    .unwrap();
    let sols = lusail_store::eval::evaluate(&st, &q);
    assert_eq!(sols.len(), 1);
    assert_eq!(dict.decode(sols.get(0, "n").unwrap()).lexical(), "0");
}

#[test]
fn count_distinct_collapses_duplicates() {
    let dict = Dictionary::shared();
    let st = sales_store(&dict);
    let q = parse_query(
        "SELECT (COUNT(DISTINCT ?r) AS ?n) WHERE { ?s <http://s/region> ?r }",
        &dict,
    )
    .unwrap();
    let sols = lusail_store::eval::evaluate(&st, &q);
    assert_eq!(dict.decode(sols.get(0, "n").unwrap()).lexical(), "3");
}

#[test]
fn federated_group_by_aggregates_globally() {
    // Sales split across two endpoints by row: per-endpoint aggregation
    // then concatenation would double-count groups; the engines must
    // aggregate the global sequence.
    let dict = Dictionary::shared();
    let full = sales_store(&dict);
    let mut a = TripleStore::new(Arc::clone(&dict));
    let mut b = TripleStore::new(Arc::clone(&dict));
    let mut i = 0;
    full.scan(None, None, None, |t| {
        // Subject-partitioned split (sales alternate between endpoints).
        let target = if (i / 2) % 2 == 0 { &mut a } else { &mut b };
        target.insert(t);
        i += 1;
        true
    });
    let mut fed = Federation::new(Arc::clone(&dict));
    fed.add(Arc::new(LocalEndpoint::new("A", a)));
    fed.add(Arc::new(LocalEndpoint::new("B", b)));

    let q = parse_query(
        "SELECT ?r (SUM(?a) AS ?total) WHERE { \
         ?s <http://s/region> ?r . ?s <http://s/amount> ?a } GROUP BY ?r \
         ORDER BY ?r",
        &dict,
    )
    .unwrap();
    let expected = lusail_store::eval::evaluate(&full, &q);
    for engine in [
        Box::new(Lusail::default()) as Box<dyn FederatedEngine>,
        Box::new(FedX::default()),
    ] {
        let got = engine
            .run_with(&fed, &q, &ExecOptions::default())
            .unwrap()
            .solutions;
        assert_eq!(
            got.canonicalize(),
            expected.canonicalize(),
            "{} aggregates wrongly",
            engine.engine_name()
        );
    }
}

#[test]
fn federated_count_star_is_global() {
    // `SELECT (COUNT(*) AS ?c)` through an engine must count global rows,
    // not concatenate per-endpoint counts.
    let w = lubm::generate(&lubm::LubmConfig::new(3));
    let q = parse_query(
        &format!(
            "PREFIX ub: <{}> SELECT (COUNT(*) AS ?c) WHERE {{ ?x a ub:GraduateStudent }}",
            lubm::UB
        ),
        w.federation.dict(),
    )
    .unwrap();
    let expected = lusail_store::eval::evaluate(&w.oracle, &q);
    for engine in [
        Box::new(Lusail::default()) as Box<dyn FederatedEngine>,
        Box::new(FedX::default()),
    ] {
        let got = engine
            .run_with(&w.federation, &q, &ExecOptions::default())
            .unwrap()
            .solutions;
        assert_eq!(got.len(), 1, "{}", engine.engine_name());
        assert_eq!(
            got.canonicalize(),
            expected.canonicalize(),
            "{} count differs",
            engine.engine_name()
        );
    }
}

#[test]
fn aggregate_query_roundtrips_through_writer() {
    let dict = Dictionary::new();
    let text = "SELECT ?r (COUNT(DISTINCT ?s) AS ?n) (AVG(?a) AS ?m) WHERE \
                { ?s <http://s/region> ?r . ?s <http://s/amount> ?a } \
                GROUP BY ?r ORDER BY DESC(?n) LIMIT 2";
    let q1 = parse_query(text, &dict).unwrap();
    assert_eq!(q1.aggregates.len(), 2);
    assert_eq!(q1.group_by, ["r"]);
    let written = lusail_sparql::write_query(&q1, &dict);
    let q2 = parse_query(&written, &dict).unwrap();
    assert_eq!(q1, q2, "roundtrip failed: {written}");
}

#[test]
fn group_by_with_order_and_limit() {
    let dict = Dictionary::shared();
    let st = sales_store(&dict);
    let q = parse_query(
        "SELECT ?r (SUM(?a) AS ?t) WHERE { \
         ?s <http://s/region> ?r . ?s <http://s/amount> ?a } \
         GROUP BY ?r ORDER BY DESC(?t) LIMIT 1",
        &dict,
    )
    .unwrap();
    let sols = lusail_store::eval::evaluate(&st, &q);
    assert_eq!(sols.len(), 1);
    assert_eq!(dict.decode(sols.get(0, "r").unwrap()).lexical(), "north");
    assert_eq!(dict.decode(sols.get(0, "t").unwrap()).lexical(), "100");
}

#[test]
fn having_filters_groups() {
    let dict = Dictionary::shared();
    let st = sales_store(&dict);
    let q = parse_query(
        "SELECT ?r (SUM(?a) AS ?t) WHERE { \
         ?s <http://s/region> ?r . ?s <http://s/amount> ?a } \
         GROUP BY ?r HAVING (?t > 25) ORDER BY ?r",
        &dict,
    )
    .unwrap();
    let sols = lusail_store::eval::evaluate(&st, &q);
    let regions: Vec<String> = (0..sols.len())
        .map(|i| dict.decode(sols.get(i, "r").unwrap()).lexical().to_string())
        .collect();
    assert_eq!(regions, ["east", "north"]); // 30 and 100 pass; 21 doesn't
}

#[test]
fn having_works_federated() {
    let w = lubm::generate(&lubm::LubmConfig::new(3));
    // Professors advising more than the average load: HAVING over a count.
    let q = parse_query(
        &format!(
            "PREFIX ub: <{}> SELECT ?y (COUNT(?x) AS ?n) WHERE {{ \
             ?x ub:advisor ?y }} GROUP BY ?y HAVING (?n >= 3) ORDER BY DESC(?n)",
            lubm::UB
        ),
        w.federation.dict(),
    )
    .unwrap();
    let expected = lusail_store::eval::evaluate(&w.oracle, &q);
    let got = Lusail::default()
        .run_with(&w.federation, &q, &ExecOptions::default())
        .unwrap()
        .solutions;
    assert_eq!(got.canonicalize(), expected.canonicalize());
    assert!(!got.is_empty());
}

#[test]
fn having_roundtrips_through_writer() {
    let dict = Dictionary::new();
    let text = "SELECT ?r (SUM(?a) AS ?t) WHERE { ?s <http://s/p> ?r . \
                ?s <http://s/q> ?a } GROUP BY ?r HAVING ((?t > 10)) HAVING ((?t < 99))";
    let q1 = parse_query(text, &dict).unwrap();
    assert_eq!(q1.having.len(), 2);
    let written = lusail_sparql::write_query(&q1, &dict);
    let q2 = parse_query(&written, &dict).unwrap();
    assert_eq!(q1, q2, "{written}");
}
