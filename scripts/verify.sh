#!/usr/bin/env bash
# Full local verification: everything CI would ask, in dependency order.
# A 30-second-capped fuzz smoke run rides along; hitting the cap counts
# as success (the cap exists to bound verify time, not coverage).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> EXPLAIN ANALYZE trace smoke (LUBM Q4, fixed clock)"
tmpdir=$(mktemp -d)
trap 'rm -rf "$tmpdir"' EXIT
cargo run --release -q --bin lusail-cli -- \
    generate --workload lubm --out "$tmpdir" --size 2 >/dev/null
cargo run --release -q --bin lusail-cli -- query \
    --endpoint "$tmpdir/univ-0.nt" --endpoint "$tmpdir/univ-1.nt" \
    --query-file "$tmpdir/queries/Q4.rq" \
    --explain-analyze --fixed-clock > "$tmpdir/explain_analyze.txt"
diff -u tests/golden/explain_analyze_lubm_q4.txt "$tmpdir/explain_analyze.txt"
echo "trace smoke: report matches the committed golden"

echo "==> chaos smoke (LUBM, replica group, primary killed mid-query)"
cp "$tmpdir/univ-0.nt" "$tmpdir/univ-0-replica.nt"
cargo run --release -q --bin lusail-cli -- query \
    --endpoint "$tmpdir/univ-0.nt" --endpoint "$tmpdir/univ-1.nt" \
    --replica univ-0="$tmpdir/univ-0-replica.nt" \
    --kill univ-0:2 \
    --query-file "$tmpdir/queries/Q2.rq" \
    --explain-analyze > "$tmpdir/chaos.txt"
grep -q 'complete: true' "$tmpdir/chaos.txt" || {
    echo "chaos smoke: result not complete despite a healthy replica" >&2
    cat "$tmpdir/chaos.txt" >&2
    exit 1
}
grep -q '^  failover: endpoint 0 -> 2 on ' "$tmpdir/chaos.txt" || {
    echo "chaos smoke: no failover from the killed primary to its replica" >&2
    cat "$tmpdir/chaos.txt" >&2
    exit 1
}
echo "chaos smoke: killed primary absorbed by its replica, result complete"

echo "==> parallel smoke (LUBM Q2, --threads 1 vs --threads 4)"
cargo run --release -q --bin lusail-cli -- query \
    --endpoint "$tmpdir/univ-0.nt" --endpoint "$tmpdir/univ-1.nt" \
    --query-file "$tmpdir/queries/Q2.rq" \
    --threads 1 > "$tmpdir/q2_t1.txt"
cargo run --release -q --bin lusail-cli -- query \
    --endpoint "$tmpdir/univ-0.nt" --endpoint "$tmpdir/univ-1.nt" \
    --query-file "$tmpdir/queries/Q2.rq" \
    --threads 4 > "$tmpdir/q2_t4.txt"
# The wall time in the summary line is nondeterministic; everything else
# (rows, request counters, scan counters) must be byte-identical.
sed 's/ in [0-9.]* ms//' "$tmpdir/q2_t1.txt" > "$tmpdir/q2_t1.stable"
sed 's/ in [0-9.]* ms//' "$tmpdir/q2_t4.txt" > "$tmpdir/q2_t4.stable"
diff -u "$tmpdir/q2_t1.stable" "$tmpdir/q2_t4.stable"
echo "parallel smoke: --threads 4 output matches --threads 1"

echo "==> backend smoke (LUBM Q2, btree vs columns byte-identical, footprint drops)"
cargo run --release -q --bin lusail-cli -- query \
    --endpoint "$tmpdir/univ-0.nt" --endpoint "$tmpdir/univ-1.nt" \
    --query-file "$tmpdir/queries/Q2.rq" \
    --backend btree > "$tmpdir/q2_btree.txt"
cargo run --release -q --bin lusail-cli -- query \
    --endpoint "$tmpdir/univ-0.nt" --endpoint "$tmpdir/univ-1.nt" \
    --query-file "$tmpdir/queries/Q2.rq" \
    --backend columns > "$tmpdir/q2_columns.txt"
# The storage line names the backend and its resident bytes; everything
# else (rows, request counters, scan counters) must be byte-identical
# once the nondeterministic wall time is stripped.
grep -q '^storage: backend btree, [0-9]* B resident' "$tmpdir/q2_btree.txt"
grep -q '^storage: backend columns, [0-9]* B resident' "$tmpdir/q2_columns.txt"
sed 's/ in [0-9.]* ms//; /^storage: /d' "$tmpdir/q2_btree.txt"   > "$tmpdir/q2_btree.stable"
sed 's/ in [0-9.]* ms//; /^storage: /d' "$tmpdir/q2_columns.txt" > "$tmpdir/q2_columns.stable"
diff -u "$tmpdir/q2_btree.stable" "$tmpdir/q2_columns.stable"
resident() { grep -o '[0-9]* B resident' "$1" | cut -d' ' -f1; }
btree_bytes=$(resident "$tmpdir/q2_btree.txt")
columns_bytes=$(resident "$tmpdir/q2_columns.txt")
if [ "$columns_bytes" -ge "$btree_bytes" ]; then
    echo "backend smoke: columns not smaller ($columns_bytes vs $btree_bytes B)" >&2
    exit 1
fi
echo "backend smoke: identical output, resident $btree_bytes -> $columns_bytes B"

echo "==> stats smoke (LUBM Q1, offline statistics elide probes, results unchanged)"
cargo run --release -q --bin lusail-cli -- stats \
    --endpoint "$tmpdir/univ-0.nt" --endpoint "$tmpdir/univ-1.nt" \
    --out "$tmpdir/stats" >/dev/null
cargo run --release -q --bin lusail-cli -- query \
    --endpoint "$tmpdir/univ-0.nt" --endpoint "$tmpdir/univ-1.nt" \
    --query-file "$tmpdir/queries/Q1.rq" > "$tmpdir/q1_wire.txt"
cargo run --release -q --bin lusail-cli -- query \
    --endpoint "$tmpdir/univ-0.nt" --endpoint "$tmpdir/univ-1.nt" \
    --query-file "$tmpdir/queries/Q1.rq" \
    --stats "$tmpdir/stats" > "$tmpdir/q1_stats.txt"
# Solutions must be byte-identical; only the load banner and the summary
# line (wall time, request counters) may differ.
sed '/^loaded /d; / rows in /d' "$tmpdir/q1_wire.txt"  > "$tmpdir/q1_wire.rows"
sed '/^loaded /d; / rows in /d' "$tmpdir/q1_stats.txt" > "$tmpdir/q1_stats.rows"
diff -u "$tmpdir/q1_wire.rows" "$tmpdir/q1_stats.rows"
reqs() { grep -o '[0-9]* remote requests' "$1" | cut -d' ' -f1; }
wire_reqs=$(reqs "$tmpdir/q1_wire.txt")
stats_reqs=$(reqs "$tmpdir/q1_stats.txt")
if [ "$stats_reqs" -ge "$wire_reqs" ]; then
    echo "stats smoke: no probe was elided ($stats_reqs vs $wire_reqs requests)" >&2
    exit 1
fi
echo "stats smoke: identical rows, requests $wire_reqs -> $stats_reqs"

echo "==> server smoke (serve, 8 concurrent clients, typed rejection, clean drain)"
./target/release/lusail-cli serve \
    --endpoint "$tmpdir/univ-0.nt" --endpoint "$tmpdir/univ-1.nt" \
    --port 0 > "$tmpdir/serve.log" 2>&1 &
serve_pid=$!
port=""
for _ in $(seq 1 100); do
    port=$(sed -n 's|^serving on http://127\.0\.0\.1:\([0-9]*\)/sparql.*|\1|p' "$tmpdir/serve.log")
    [ -n "$port" ] && break
    sleep 0.1
done
if [ -z "$port" ]; then
    echo "server smoke: server never announced its port" >&2
    cat "$tmpdir/serve.log" >&2
    exit 1
fi
# 8 concurrent clients: seven well-behaved tenants, one with an
# impossible deadline that must come back as a typed 504.
client_pids=()
for i in $(seq 1 7); do
    curl -s -X POST --data-binary @"$tmpdir/queries/Q4.rq" \
        -H "X-Tenant: tenant-$i" "http://127.0.0.1:$port/sparql" \
        > "$tmpdir/serve_q4_$i.txt" &
    client_pids+=($!)
done
curl -s -X POST --data-binary @"$tmpdir/queries/Q4.rq" \
    -H 'X-Deadline-Ms: 0' "http://127.0.0.1:$port/sparql" \
    > "$tmpdir/serve_deadline.txt" &
client_pids+=($!)
wait "${client_pids[@]}"
grep -q '^code: deadline$' "$tmpdir/serve_deadline.txt" || {
    echo "server smoke: impossible deadline was not a typed 504 rejection" >&2
    cat "$tmpdir/serve_deadline.txt" >&2
    exit 1
}
# Every admitted client's body must be byte-for-byte the table the
# single-shot CLI prints (the result block after the storage banner).
cargo run --release -q --bin lusail-cli -- query \
    --endpoint "$tmpdir/univ-0.nt" --endpoint "$tmpdir/univ-1.nt" \
    --query-file "$tmpdir/queries/Q4.rq" > "$tmpdir/q4_cli.txt"
sed -n '/^storage:/,$p' "$tmpdir/q4_cli.txt" | sed '1d' | sed -n '/^$/q;p' \
    > "$tmpdir/q4_cli.table"
for i in $(seq 1 7); do
    diff -u "$tmpdir/q4_cli.table" "$tmpdir/serve_q4_$i.txt"
done
kill -TERM "$serve_pid"
wait "$serve_pid"
grep -q '(0 abandoned)' "$tmpdir/serve.log" || {
    echo "server smoke: SIGTERM drain was not clean" >&2
    cat "$tmpdir/serve.log" >&2
    exit 1
}
echo "server smoke: 7 identical tables, typed deadline rejection, clean drain"

echo "==> batching smoke (two overlapping clients share a window, identical bodies)"
# A generous window with a count trigger of 2: the first client opens the
# window, the second closes it, and the shared subqueries are evaluated
# once. Bodies must still be byte-identical to the single-shot CLI table.
./target/release/lusail-cli serve \
    --endpoint "$tmpdir/univ-0.nt" --endpoint "$tmpdir/univ-1.nt" \
    --port 0 --batch-window-ms 2000 --batch-max 2 > "$tmpdir/serve_batch.log" 2>&1 &
serve_pid=$!
port=""
for _ in $(seq 1 100); do
    port=$(sed -n 's|^serving on http://127\.0\.0\.1:\([0-9]*\)/sparql.*|\1|p' "$tmpdir/serve_batch.log")
    [ -n "$port" ] && break
    sleep 0.1
done
if [ -z "$port" ]; then
    echo "batching smoke: server never announced its port" >&2
    cat "$tmpdir/serve_batch.log" >&2
    exit 1
fi
curl -s -X POST --data-binary @"$tmpdir/queries/Q4.rq" \
    -H 'X-Tenant: alice' "http://127.0.0.1:$port/sparql" \
    > "$tmpdir/batch_q4_a.txt" &
batch_a=$!
curl -s -X POST --data-binary @"$tmpdir/queries/Q4.rq" \
    -H 'X-Tenant: bob' "http://127.0.0.1:$port/sparql" \
    > "$tmpdir/batch_q4_b.txt" &
batch_b=$!
wait "$batch_a" "$batch_b"
diff -u "$tmpdir/q4_cli.table" "$tmpdir/batch_q4_a.txt"
diff -u "$tmpdir/q4_cli.table" "$tmpdir/batch_q4_b.txt"
curl -s "http://127.0.0.1:$port/stats" > "$tmpdir/batch_stats.txt"
shared_hits=$(sed -n 's/^batch\.shared_hits: //p' "$tmpdir/batch_stats.txt")
if [ -z "$shared_hits" ] || [ "$shared_hits" -lt 1 ]; then
    echo "batching smoke: overlapping clients shared no subquery" >&2
    cat "$tmpdir/batch_stats.txt" >&2
    exit 1
fi
kill -TERM "$serve_pid"
wait "$serve_pid"
grep -q '(0 abandoned)' "$tmpdir/serve_batch.log" || {
    echo "batching smoke: SIGTERM drain was not clean" >&2
    cat "$tmpdir/serve_batch.log" >&2
    exit 1
}
echo "batching smoke: 2 identical tables, $shared_hits shared subquery hit(s)"

echo "==> bench smoke (counters reproduce BENCH_10.json across thread budgets, gate holds)"
cargo run --release -q -p lusail-bench --bin lusail-bench -- \
    check --against BENCH_10.json --workload lubm --query Q4 --threads 1 --threads 4

echo "==> fuzz smoke (200 iterations, 30 s cap)"
set +e
timeout 30 cargo run --release -q -p lusail-testkit --bin fuzz -- --iters 200
status=$?
set -e
if [ "$status" -ne 0 ] && [ "$status" -ne 124 ]; then
    echo "fuzz smoke failed (exit $status)" >&2
    exit "$status"
fi
[ "$status" -eq 124 ] && echo "fuzz smoke: 30 s cap reached (ok)"

echo "verify: all checks passed"
