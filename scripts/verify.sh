#!/usr/bin/env bash
# Full local verification: everything CI would ask, in dependency order.
# A 30-second-capped fuzz smoke run rides along; hitting the cap counts
# as success (the cap exists to bound verify time, not coverage).
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo clippy --all-targets -- -D warnings"
cargo clippy --all-targets -- -D warnings

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> fuzz smoke (200 iterations, 30 s cap)"
set +e
timeout 30 cargo run --release -q -p lusail-testkit --bin fuzz -- --iters 200
status=$?
set -e
if [ "$status" -ne 0 ] && [ "$status" -ne 124 ]; then
    echo "fuzz smoke failed (exit $status)" >&2
    exit "$status"
fi
[ "$status" -eq 124 ] && echo "fuzz smoke: 30 s cap reached (ok)"

echo "verify: all checks passed"
