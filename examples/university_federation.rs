//! University federation: generate a LUBM-style federation (one
//! university per endpoint, degree interlinks) and compare Lusail against
//! the FedX-style baseline on the paper's queries Q1–Q4.
//!
//! ```sh
//! cargo run --release --example university_federation [universities]
//! ```

use lusail_baselines::FedX;
use lusail_benchdata::lubm::{generate, LubmConfig};
use lusail_endpoint::ExecOptions;
use lusail_endpoint::FederatedEngine;
use lusail_repro::lusail::Lusail;
use std::time::Instant;

fn main() {
    let universities: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(4);
    println!("Generating {universities} universities …");
    let w = generate(&LubmConfig::new(universities));
    println!(
        "federation: {} endpoints, {} triples total\n",
        w.federation.len(),
        w.federation.total_triples()
    );

    let lusail = Lusail::default();
    let fedx = FedX::default();

    println!(
        "{:<4} {:>10} {:>12} {:>10} {:>12} {:>8}",
        "qry", "lusail(ms)", "lusail reqs", "fedx(ms)", "fedx reqs", "rows"
    );
    for nq in &w.queries {
        // Lusail.
        let before = w.federation.stats_snapshot();
        let t0 = Instant::now();
        let lu = lusail.execute(&w.federation, &nq.query).unwrap();
        let lu_ms = t0.elapsed().as_secs_f64() * 1e3;
        let lu_reqs = w
            .federation
            .stats_snapshot()
            .since(&before)
            .total_requests();

        // FedX.
        let before = w.federation.stats_snapshot();
        let t0 = Instant::now();
        let fx = fedx
            .run_with(&w.federation, &nq.query, &ExecOptions::default())
            .unwrap()
            .solutions;
        let fx_ms = t0.elapsed().as_secs_f64() * 1e3;
        let fx_reqs = w
            .federation
            .stats_snapshot()
            .since(&before)
            .total_requests();

        assert_eq!(
            lu.solutions.canonicalize(),
            fx.canonicalize(),
            "engines disagree on {}",
            nq.name
        );
        println!(
            "{:<4} {:>10.1} {:>12} {:>10.1} {:>12} {:>8}",
            nq.name,
            lu_ms,
            lu_reqs,
            fx_ms,
            fx_reqs,
            lu.solutions.len()
        );
        if !lu.metrics.gjvs.is_empty() {
            println!(
                "     └ GJVs {:?}, {} subqueries, {} delayed",
                lu.metrics.gjvs, lu.metrics.subqueries, lu.metrics.delayed_subqueries
            );
        }
    }
    println!(
        "\nQ1/Q2 are disjoint (whole query per endpoint: one request each); \
         Q3/Q4 join across endpoints, where FedX's bound joins need many \
         more requests."
    );
}
