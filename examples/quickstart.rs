//! Quickstart: build the paper's two-university example (Figs. 1 and 2)
//! by hand, run the running-example query Qa through Lusail, and inspect
//! what the engine did.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use lusail_endpoint::{Federation, LocalEndpoint};
use lusail_rdf::{Dictionary, Term};
use lusail_repro::lusail::{Lusail, LusailConfig};
use lusail_sparql::parse_query;
use lusail_store::TripleStore;
use std::sync::Arc;

fn main() {
    // One shared dictionary per federation: endpoints and engine encode
    // terms through it.
    let dict = Dictionary::shared();
    let ub = |l: &str| Term::iri(format!("http://ub/{l}"));
    let e1 = |l: &str| Term::iri(format!("http://ep1/{l}"));
    let e2 = |l: &str| Term::iri(format!("http://ep2/{l}"));

    // Endpoint EP1 — a university where every professor got their PhD
    // locally (CMU lives here, so does MIT's address record).
    let mut ep1 = TripleStore::new(Arc::clone(&dict));
    for (s, p, o) in [
        (e1("Kim"), ub("advisor"), e1("Joy")),
        (e1("Kim"), ub("takesCourse"), e1("c1")),
        (e1("Joy"), ub("teacherOf"), e1("c1")),
        (e1("Joy"), ub("PhDDegreeFrom"), e1("CMU")),
        (e1("CMU"), ub("address"), Term::lit("CCCC")),
        (e1("MIT"), ub("address"), Term::lit("XXX")),
    ] {
        ep1.insert_terms(&s, &p, &o);
    }

    // Endpoint EP2 — Tim's PhD university (MIT) lives at EP1: the red
    // dotted interlink of Fig. 1.
    let mut ep2 = TripleStore::new(Arc::clone(&dict));
    for (s, p, o) in [
        (e2("Lee"), ub("advisor"), e2("Tim")),
        (e2("Lee"), ub("takesCourse"), e2("c3")),
        (e2("Tim"), ub("teacherOf"), e2("c3")),
        (e2("Tim"), ub("PhDDegreeFrom"), e1("MIT")),
    ] {
        ep2.insert_terms(&s, &p, &o);
    }

    let mut fed = Federation::new(Arc::clone(&dict));
    fed.add(Arc::new(LocalEndpoint::new("EP1", ep1)));
    fed.add(Arc::new(LocalEndpoint::new("EP2", ep2)));

    // Qa: students taking courses with their advisors, plus the advisor's
    // alma mater and its address (Fig. 2).
    let qa = parse_query(
        "PREFIX ub: <http://ub/> \
         SELECT ?S ?P ?U ?A WHERE { \
           ?S ub:advisor ?P . \
           ?S ub:takesCourse ?C . \
           ?P ub:PhDDegreeFrom ?U . \
           ?U ub:address ?A }",
        &dict,
    )
    .expect("Qa parses");

    let engine = Lusail::new(LusailConfig::default());
    let result = engine.execute(&fed, &qa).expect("non-empty federation");

    println!("=== Lusail quickstart: the paper's running example ===\n");
    println!(
        "global join variables : {:?} (the paper finds ?U global: Tim's \
         PhD university lives at EP1)",
        result.metrics.gjvs
    );
    println!("subqueries            : {}", result.metrics.subqueries);
    println!("check queries         : {}", result.metrics.check_queries);
    println!(
        "remote requests       : {}",
        result.metrics.total_requests()
    );
    println!("result rows           : {}\n", result.solutions.len());

    for (i, row) in result.solutions.rows.iter().enumerate() {
        let render = |v: &str| -> String {
            match result
                .solutions
                .col(v)
                .and_then(|c| row[c])
                .map(|id| dict.decode(id))
            {
                Some(term) => term.lexical().to_string(),
                None => "-".into(),
            }
        };
        println!(
            "  answer {}: student={} advisor={} university={} address={}",
            i + 1,
            render("S"),
            render("P"),
            render("U"),
            render("A")
        );
    }
    println!(
        "\nNote the (Lee, Tim, MIT, XXX) row: it joins EP2 data with EP1 \
         data across the interlink — evaluating Qa independently at each \
         endpoint would miss it."
    );

    // The per-endpoint counters show where requests went.
    for (_, ep) in fed.iter() {
        let s = ep.stats_snapshot();
        println!(
            "endpoint {:>4}: {} ASK, {} SELECT, {} COUNT",
            ep.name(),
            s.ask_requests,
            s.select_requests,
            s.count_requests
        );
    }
}
