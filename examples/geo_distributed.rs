//! Geo-distributed federation: LUBM endpoints placed behind simulated WAN
//! links (per-request latency + bandwidth, as in the paper's Azure
//! 7-region deployment of Fig. 14), comparing Lusail and FedX end to end.
//!
//! Latencies are scaled down (milliseconds, not hundreds of milliseconds)
//! so the example finishes quickly; the *ratio* between the systems is
//! what the experiment demonstrates — FedX's request count multiplies the
//! round-trip latency, Lusail's does not.
//!
//! ```sh
//! cargo run --release --example geo_distributed
//! ```

use lusail_baselines::FedX;
use lusail_benchdata::lubm::{generate, LubmConfig};
use lusail_endpoint::ExecOptions;
use lusail_endpoint::{FederatedEngine, NetworkProfile};
use lusail_repro::lusail::Lusail;
use std::time::Instant;

fn main() {
    // Two endpoints in "different regions": 4 ms and 8 ms round trips.
    let mut config = LubmConfig::new(2);
    config.profiles = Some(vec![
        NetworkProfile::wan(4, 100),
        NetworkProfile::wan(8, 100),
    ]);
    let w = generate(&config);
    println!(
        "geo-distributed LUBM: {} endpoints, {} triples, WAN latencies 4/8 ms\n",
        w.federation.len(),
        w.federation.total_triples()
    );

    let lusail = Lusail::default();
    let fedx = FedX::default();

    println!(
        "{:<4} {:>12} {:>12} {:>12} {:>12} {:>9}",
        "qry", "lusail(ms)", "lus reqs", "fedx(ms)", "fedx reqs", "speedup"
    );
    for nq in &w.queries {
        let before = w.federation.stats_snapshot();
        let t0 = Instant::now();
        let lu = lusail.execute(&w.federation, &nq.query).unwrap();
        let lu_ms = t0.elapsed().as_secs_f64() * 1e3;
        let lu_reqs = w
            .federation
            .stats_snapshot()
            .since(&before)
            .total_requests();

        let before = w.federation.stats_snapshot();
        let t0 = Instant::now();
        let fx = fedx
            .run_with(&w.federation, &nq.query, &ExecOptions::default())
            .unwrap()
            .solutions;
        let fx_ms = t0.elapsed().as_secs_f64() * 1e3;
        let fx_reqs = w
            .federation
            .stats_snapshot()
            .since(&before)
            .total_requests();

        assert_eq!(
            lu.solutions.canonicalize(),
            fx.canonicalize(),
            "engines disagree on {}",
            nq.name
        );
        println!(
            "{:<4} {:>12.1} {:>12} {:>12.1} {:>12} {:>8.1}x",
            nq.name,
            lu_ms,
            lu_reqs,
            fx_ms,
            fx_reqs,
            fx_ms / lu_ms.max(0.001)
        );
    }
    println!(
        "\nEvery remote request pays the WAN round trip: the request-count \
         gap becomes a response-time gap (the paper's Fig. 14(c), where \
         FedX needs >1000 s and Lusail ~1 s)."
    );
}
