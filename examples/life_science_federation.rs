//! Life-science federation: the QFed-style setting (DrugBank, Diseasome,
//! Sider, DailyMed) queried by all four engines — Lusail plus the three
//! baselines, including the index-based ones with their preprocessing
//! pass.
//!
//! ```sh
//! cargo run --release --example life_science_federation
//! ```

use lusail_baselines::{FedX, HiBisCus, HibiscusIndex, Splendid, VoidIndex};
use lusail_benchdata::qfed::{generate, QfedConfig};
use lusail_endpoint::ExecOptions;
use lusail_endpoint::FederatedEngine;
use lusail_repro::lusail::Lusail;
use std::time::Instant;

fn main() {
    let w = generate(&QfedConfig::default());
    println!(
        "QFed-style federation: {} endpoints, {} triples total",
        w.federation.len(),
        w.federation.total_triples()
    );

    // Index-based baselines preprocess the endpoints first; the paper
    // times this pass (25 s for the real QFed) to argue for index-free
    // designs.
    let t0 = Instant::now();
    let void = VoidIndex::build(&w.endpoint_refs());
    println!(
        "SPLENDID VOID preprocessing: {:.1} ms",
        t0.elapsed().as_secs_f64() * 1e3
    );
    let t0 = Instant::now();
    let hib_index = HibiscusIndex::build(&w.endpoint_refs());
    println!(
        "HiBISCuS authority preprocessing: {:.1} ms\n",
        t0.elapsed().as_secs_f64() * 1e3
    );

    let engines: Vec<Box<dyn FederatedEngine>> = vec![
        Box::new(Lusail::default()),
        Box::new(FedX::default()),
        Box::new(HiBisCus::new(hib_index)),
        Box::new(Splendid::new(void)),
    ];

    println!(
        "{:<8} {:>12} {:>14} {:>12} {:>8}",
        "query", "engine", "time(ms)", "requests", "rows"
    );
    for nq in &w.queries {
        let mut reference: Option<lusail_sparql::SolutionSet> = None;
        for engine in &engines {
            let before = w.federation.stats_snapshot();
            let t0 = Instant::now();
            let sols = engine
                .run_with(&w.federation, &nq.query, &ExecOptions::default())
                .unwrap()
                .solutions;
            let ms = t0.elapsed().as_secs_f64() * 1e3;
            let reqs = w
                .federation
                .stats_snapshot()
                .since(&before)
                .total_requests();
            match &reference {
                None => reference = Some(sols.canonicalize()),
                Some(r) => assert_eq!(
                    *r,
                    sols.canonicalize(),
                    "{} disagrees on {}",
                    engine.engine_name(),
                    nq.name
                ),
            }
            println!(
                "{:<8} {:>12} {:>14.1} {:>12} {:>8}",
                nq.name,
                engine.engine_name(),
                ms,
                reqs,
                sols.len()
            );
        }
        println!();
    }
}
